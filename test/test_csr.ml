(* ftr-lint: disable-file T3 test assertions compare small concrete values *)
(* The flat-CSR refactor's safety net.

   The golden values below were recorded from the pre-refactor tree (the
   jagged-row router with Hashtbl exclusion lists) on the exact grids
   re-run here; the refactor's contract is byte-for-byte identical
   semantics, so these tests must pass without any tolerance. The
   qcheck properties pin the CSR representation to the jagged view it
   replaced, and the Gc tests pin the "zero minor allocations per hop"
   property the refactor bought. *)

module Network = Ftr_core.Network
module Route = Ftr_core.Route
module Failure = Ftr_core.Failure
module E = Ftr_core.Experiment
module Csr = Ftr_graph.Adjacency.Csr
module Rng = Ftr_prng.Rng

(* ------------------------------------------------------------------ *)
(* Golden-seed regression: route outcomes                              *)
(* ------------------------------------------------------------------ *)

(* Encode an outcome the way the recorder did: D<hops> for delivered,
   F<hops>@<stuck_at> for failed. *)
let outcome_code = function
  | Route.Delivered { hops } -> Printf.sprintf "D%d" hops
  | Route.Failed { hops; stuck_at; _ } -> Printf.sprintf "F%d@%d" hops stuck_at

(* One grid config of the recorder: build at [seed], mask the same rng,
   route 24 live src<>dst pairs drawn from the same rng. [scratch]
   optionally threads one reusable scratch through every call — reuse
   must not change a single outcome. *)
let run_config ?scratch ~seed ~strategy ~fraction () =
  let n = 1024 and links = 10 in
  let rng = Rng.of_int seed in
  let net = Network.build_ideal ~n ~links rng in
  let failures, alive =
    if fraction > 0.0 then begin
      let mask = Failure.random_node_fraction rng ~n ~fraction in
      (Failure.of_node_mask mask, Ftr_graph.Bitset.get mask)
    end
    else (Failure.none, fun _ -> true)
  in
  let outcomes = ref [] in
  let routed = ref 0 in
  while !routed < 24 do
    let src = Rng.int rng n and dst = Rng.int rng n in
    if src <> dst && alive src && alive dst then begin
      incr routed;
      let o = Route.route ?scratch ~failures ~strategy ~rng net ~src ~dst in
      outcomes := outcome_code o :: !outcomes
    end
  done;
  String.concat "," (List.rev !outcomes)

let golden_grid =
  [
    ( 42,
      Route.Terminate,
      0.0,
      "D7,D6,D6,D7,D7,D10,D6,D11,D8,D8,D7,D8,D5,D5,D6,D3,D5,D9,D6,D5,D5,D4,D5,D5" );
    ( 42,
      Route.Backtrack { history = 5 },
      0.3,
      "D8,D13,D19,D10,D6,D7,D7,D3,D13,D487,D5,D2,D9,D5,D14,D10,D7,D7,D3,D10,D5,D2,D7,D4" );
    ( 43,
      Route.Random_reroute { attempts = 3 },
      0.3,
      "D11,D16,D9,D8,D3,D4,D7,D11,D3,D5,D1,D7,D4,D8,D7,D7,D7,D4,D6,D22,D8,D4,D6,D30" );
    ( 44,
      Route.Backtrack { history = 5 },
      0.5,
      "D6,D7,D60,D8,D8,D26,F1292@30,D9,D19,D5,D12,D10,D78,D1,D62,D9,D8,D4,D7,F0@564,D30,D11,D3,D12"
    );
  ]

let golden_route_outcomes () =
  List.iter
    (fun (seed, strategy, fraction, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "seed=%d fail=%g" seed fraction)
        expected
        (run_config ~seed ~strategy ~fraction ()))
    golden_grid

let golden_route_outcomes_with_scratch () =
  List.iter
    (fun (seed, strategy, fraction, expected) ->
      (* A single scratch reused across all 24 messages of each config —
         stale stamps or backtrack history must never leak between
         routes. *)
      let scratch = Route.scratch (Network.build_ideal ~n:1024 ~links:10 (Rng.of_int seed)) in
      Alcotest.(check string)
        (Printf.sprintf "seed=%d fail=%g (scratch)" seed fraction)
        expected
        (run_config ~scratch ~seed ~strategy ~fraction ()))
    golden_grid

(* ------------------------------------------------------------------ *)
(* Golden-seed regression: Figure 6 fractions                          *)
(* ------------------------------------------------------------------ *)

(* Full-precision (hex float) fractions recorded from the pre-refactor
   tree at test scale. Compared as %h strings: bit-for-bit, no epsilon. *)
let golden_figure6 () =
  let rows = E.figure6 ~n:1024 ~links:10 ~networks:2 ~messages:60 ~fractions:[ 0.0; 0.3; 0.6 ] ~seed:5 () in
  let line r =
    Printf.sprintf "p=%g term=%h rer=%h bt=%h bt_hops=%h bt_path=%h" r.E.fail_fraction
      r.E.terminate.E.failed_fraction r.E.reroute.E.failed_fraction
      r.E.backtrack.E.failed_fraction r.E.backtrack.E.mean_hops r.E.backtrack.E.mean_path_hops
  in
  let expected =
    [
      "p=0 term=0x0p+0 rer=0x0p+0 bt=0x0p+0 bt_hops=0x1.8111111111111p+2 \
       bt_path=0x1.8111111111111p+2";
      "p=0.3 term=0x1.1111111111111p-2 rer=0x1p-3 bt=0x1.1111111111111p-6 \
       bt_hops=0x1.2d6cdfa1d6cep+3 bt_path=0x1.b5136bb25136cp+2";
      "p=0.6 term=0x1.8444444444444p-1 rer=0x1.5111111111111p-1 bt=0x1.3333333333333p-3 \
       bt_hops=0x1.5bdd576f108aap+5 bt_path=0x1.3d1eb851eb852p+3";
    ]
  in
  List.iter2 (fun want row -> Alcotest.(check string) "figure6 row" want (line row)) expected rows

(* ------------------------------------------------------------------ *)
(* CSR vs jagged view                                                  *)
(* ------------------------------------------------------------------ *)

let row_of_csr c u = Csr.row c u

let prop_csr_matches_jagged =
  QCheck.Test.make ~name:"network CSR rows equal the neighbors shim" ~count:40
    QCheck.(triple (int_range 2 192) (int_range 0 6) small_int)
    (fun (n, links, seed) ->
      let net = Network.build_ideal ~n ~links (Rng.of_int seed) in
      let c = Network.csr net in
      Csr.validate ~sorted:true c;
      let ok = ref true in
      for u = 0 to n - 1 do
        let shim = Network.neighbors net u in
        if shim <> row_of_csr c u then ok := false;
        if Array.length shim <> Network.degree net u then ok := false;
        Array.iteri (fun k v -> if Network.neighbor net u k <> v then ok := false) shim;
        let via_iter = ref [] in
        Network.iter_neighbors net u (fun v -> via_iter := v :: !via_iter);
        if Array.of_list (List.rev !via_iter) <> shim then ok := false
      done;
      !ok)

let prop_csr_roundtrip =
  QCheck.Test.make ~name:"Csr.of_rows/to_rows roundtrip on network rows" ~count:40
    QCheck.(triple (int_range 2 128) (int_range 0 5) small_int)
    (fun (n, links, seed) ->
      let net = Network.build_ideal ~n ~links (Rng.of_int seed) in
      let rows = Array.init n (Network.neighbors net) in
      let c = Csr.of_rows rows in
      Csr.to_rows c = rows
      && Csr.edge_count c = Array.fold_left (fun a r -> a + Array.length r) 0 rows)

(* ------------------------------------------------------------------ *)
(* Streaming vs materialized construction                              *)
(* ------------------------------------------------------------------ *)

(* [Network.build_ideal] streams CSR rows straight into the builder;
   [build_ideal_materialized] keeps the pre-refactor materialize-then-
   convert path as the oracle. Same seed must mean byte-identical
   networks — vectors compared with the Bigarray equalities, not through
   any int-array shim — and, as a behavioural witness, identical route
   outcomes on a shared pair stream. *)
let prop_streaming_equals_materialized =
  QCheck.Test.make ~name:"streaming build_ideal equals materialized oracle" ~count:40
    QCheck.(triple (int_range 2 256) (int_range 0 8) small_int)
    (fun (n, links, seed) ->
      let module I32 = Ftr_graph.Adjacency.I32 in
      let streamed = Network.build_ideal ~n ~links (Rng.of_int seed) in
      let oracle = Network.build_ideal_materialized ~n ~links (Rng.of_int seed) in
      let same_bytes =
        I32.equal (Network.positions streamed) (Network.positions oracle)
        && Csr.equal (Network.csr streamed) (Network.csr oracle)
        && Network.line_size streamed = Network.line_size oracle
        && Network.links streamed = Network.links oracle
      in
      let same_routes =
        let pair_rng = Rng.of_int (seed + 1) in
        let ok = ref true in
        for _ = 1 to 16 do
          let src = Rng.int pair_rng n and dst = Rng.int pair_rng n in
          if
            Route.route streamed ~src ~dst
            <> Route.route oracle ~src ~dst
          then ok := false
        done;
        !ok
      in
      same_bytes && same_routes)

(* ------------------------------------------------------------------ *)
(* Batch routing: jobs-invariance                                      *)
(* ------------------------------------------------------------------ *)

let with_seq_forced on f =
  let old = Sys.getenv_opt "FTR_EXEC_SEQ" in
  Unix.putenv "FTR_EXEC_SEQ" (if on then "1" else "0");
  Fun.protect
    ~finally:(fun () -> Unix.putenv "FTR_EXEC_SEQ" (match old with Some v -> v | None -> "0"))
    f

(* The batch layer's contract: the merged outcome vector is a pure
   function of (network, pairs, options) — never of the worker count or
   the scheduler. The reference is the plain sequential loop with the
   same per-index rng derivation. *)
let prop_batch_jobs_invariant =
  QCheck.Test.make ~name:"Route_batch merged outcomes invariant across jobs" ~count:12
    QCheck.(triple (int_range 16 192) (int_range 0 5) small_int)
    (fun (n, links, seed) ->
      let module Route_batch = Ftr_core.Route_batch in
      let module Seed = Ftr_exec.Seed in
      let rng = Rng.of_int seed in
      let net = Network.build_ideal ~n ~links rng in
      let mask = Failure.random_node_fraction rng ~n ~fraction:0.25 in
      let failures = Failure.of_node_mask mask in
      let alive = Ftr_graph.Bitset.get mask in
      let rec live () =
        let v = Rng.int rng n in
        if alive v then v else live ()
      in
      let pairs = Array.init 97 (fun _ -> (live (), live ())) in
      let strategy = Route.Random_reroute { attempts = 2 } in
      let reference =
        Array.mapi
          (fun i (src, dst) ->
            let rng = Seed.rng_for ~seed:11 ~index:i in
            Route.route ~failures ~strategy ~rng net ~src ~dst)
          pairs
      in
      let batch ~jobs =
        (* chunk 16 forces several chunks per job even at small counts. *)
        Route_batch.run ~jobs ~chunk:16 ~failures ~strategy ~seed:11 net ~pairs
      in
      List.for_all (fun jobs -> batch ~jobs = reference) [ 1; 2; 4 ]
      && with_seq_forced true (fun () -> batch ~jobs:4 = reference))

(* ------------------------------------------------------------------ *)
(* Duplicate-entry policy (documented on Network.neighbors)            *)
(* ------------------------------------------------------------------ *)

let sorted_row a =
  let ok = ref true in
  for k = 1 to Array.length a - 1 do
    if a.(k - 1) > a.(k) then ok := false
  done;
  !ok

let strictly_increasing_row a =
  let ok = ref true in
  for k = 1 to Array.length a - 1 do
    if a.(k - 1) >= a.(k) then ok := false
  done;
  !ok

let all_rows pred net =
  let ok = ref true in
  for u = 0 to Network.size net - 1 do
    if not (pred (Network.neighbors net u)) then ok := false
  done;
  !ok

let prop_duplicate_policy =
  QCheck.Test.make
    ~name:"duplicate policy: random builders sorted, structural builders duplicate-free"
    ~count:25
    QCheck.(pair (int_range 8 192) small_int)
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      (* Random builders: rows sorted non-decreasing; duplicates allowed
         (multiplicity is part of the sampled distribution). *)
      all_rows sorted_row (Network.build_ideal ~n ~links:4 rng)
      && all_rows sorted_row (Network.build_ring ~n ~links:3 rng)
      && all_rows sorted_row (Network.build_binomial ~n ~links:3 ~present_p:0.7 rng)
      (* Structural builders: strictly increasing — never a duplicate. *)
      && all_rows strictly_increasing_row (Network.build_deterministic ~n ~base:2)
      && all_rows strictly_increasing_row (Network.build_geometric ~n ~base:2)
      && all_rows strictly_increasing_row (Network.build_chordlike ~n ()))

(* A witness that the random builders really do keep duplicate entries
   rather than silently deduplicating: across a handful of seeds at
   least one ideal network must contain a duplicated row entry (several
   independent 1/d draws landing on the same near neighbour is near
   certain at this scale). *)
let random_builder_keeps_duplicates () =
  let found = ref false in
  for seed = 0 to 9 do
    let net = Network.build_ideal ~n:64 ~links:6 (Rng.of_int seed) in
    for u = 0 to 63 do
      let row = Network.neighbors net u in
      for k = 1 to Array.length row - 1 do
        if row.(k - 1) = row.(k) then found := true
      done
    done
  done;
  Alcotest.(check bool) "some ideal network has a duplicate entry" true !found

(* ------------------------------------------------------------------ *)
(* Allocation behaviour                                                *)
(* ------------------------------------------------------------------ *)

(* With a reusable scratch, a route's minor-heap allocation is a small
   per-call constant (outcome record plus a few closures — measured at
   ~130 words) and independent of hop count: a 65535-hop route must stay
   under a bound two orders of magnitude below one word per hop. *)
let minor_words_independent_of_hops () =
  let n = 1 lsl 16 in
  (* links:0 leaves only immediate neighbours, so src=0 -> dst=n-1 walks
     every node: the longest route the line can produce. *)
  let net = Network.build_ideal ~n ~links:0 (Rng.of_int 1) in
  let scratch = Route.scratch net in
  (* Warmup sizes the scratch arrays; growth is a one-time cost. *)
  ignore (Route.route ~strategy:(Route.Backtrack { history = 5 }) ~scratch net ~src:0 ~dst:(n - 1));
  let measure f =
    let w0 = Gc.minor_words () in
    f ();
    Gc.minor_words () -. w0
  in
  let terminate =
    measure (fun () -> ignore (Route.route ~scratch net ~src:0 ~dst:(n - 1)))
  in
  let backtrack =
    measure (fun () ->
        ignore
          (Route.route ~strategy:(Route.Backtrack { history = 5 }) ~scratch net ~src:0 ~dst:(n - 1)))
  in
  Alcotest.(check bool)
    (Printf.sprintf "terminate: %.0f minor words for %d hops" terminate (n - 1))
    true (terminate < 512.0);
  Alcotest.(check bool)
    (Printf.sprintf "backtrack: %.0f minor words for %d hops" backtrack (n - 1))
    true (backtrack < 512.0)

(* Steady state on the Figure 6 workload: mean minor words per message
   stays a small constant (the pre-refactor router allocated per hop —
   thousands of words on this grid). *)
let minor_words_steady_state () =
  let n = 4096 in
  let rng = Rng.of_int 9 in
  let net = Network.build_ideal ~n ~links:12 rng in
  let mask = Failure.random_node_fraction rng ~n ~fraction:0.3 in
  let failures = Failure.of_node_mask mask in
  let alive = Ftr_graph.Bitset.get mask in
  let scratch = Route.scratch net in
  let live () =
    let rec go () =
      let v = Rng.int rng n in
      if alive v then v else go ()
    in
    go ()
  in
  let run_messages count =
    for _ = 1 to count do
      let src = live () and dst = live () in
      ignore
        (Route.route ~failures ~strategy:(Route.Backtrack { history = 5 }) ~scratch net ~src ~dst)
    done
  in
  run_messages 50 (* warmup *);
  let w0 = Gc.minor_words () in
  let messages = 500 in
  run_messages messages;
  let per_message = (Gc.minor_words () -. w0) /. float_of_int messages in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f minor words per message" per_message)
    true (per_message < 1024.0)

let () =
  Alcotest.run "csr"
    [
      ( "golden",
        [
          Alcotest.test_case "route outcomes" `Quick golden_route_outcomes;
          Alcotest.test_case "route outcomes with shared scratch" `Quick
            golden_route_outcomes_with_scratch;
          Alcotest.test_case "figure6 fractions (bit-exact)" `Quick golden_figure6;
        ] );
      ( "duplicates",
        [ Alcotest.test_case "random builders keep duplicates" `Quick random_builder_keeps_duplicates ]
      );
      ( "allocation",
        [
          Alcotest.test_case "minor words independent of hops" `Quick
            minor_words_independent_of_hops;
          Alcotest.test_case "minor words per message bounded" `Quick minor_words_steady_state;
        ] );
      ( "properties",
        List.map (fun p -> QCheck_alcotest.to_alcotest p)
          [
            prop_csr_matches_jagged;
            prop_csr_roundtrip;
            prop_streaming_equals_materialized;
            prop_batch_jobs_invariant;
            prop_duplicate_policy;
          ] );
    ]
