module Harmonic = Ftr_stats.Harmonic
module Summary = Ftr_stats.Summary
module Quantile = Ftr_stats.Quantile
module Histogram = Ftr_stats.Histogram
module Linreg = Ftr_stats.Linreg
module Gof = Ftr_stats.Gof

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Harmonic numbers                                                    *)
(* ------------------------------------------------------------------ *)

let harmonic_small_values () =
  check_float "H_0" 0.0 (Harmonic.number 0);
  check_float "H_1" 1.0 (Harmonic.number 1);
  check_float "H_2" 1.5 (Harmonic.number 2);
  check_float "H_4" (1.0 +. 0.5 +. (1.0 /. 3.0) +. 0.25) (Harmonic.number 4)

let harmonic_approx_accuracy () =
  List.iter
    (fun n ->
      let exact = Harmonic.number n and approx = Harmonic.approx n in
      Alcotest.(check bool)
        (Printf.sprintf "H_%d approx" n)
        true
        (abs_float (exact -. approx) < 1e-6))
    [ 10; 100; 1000; 65536 ]

let harmonic_table_consistent () =
  let t = Harmonic.table 50 in
  Alcotest.(check int) "length" 51 (Array.length t);
  for k = 0 to 50 do
    check_float (Printf.sprintf "table %d" k) (Harmonic.number k) t.(k)
  done

let harmonic_generalized () =
  check_float "exponent 1 = H_n" (Harmonic.number 30) (Harmonic.generalized ~exponent:1.0 30);
  check_float "exponent 0 = n" 30.0 (Harmonic.generalized ~exponent:0.0 30);
  Alcotest.(check bool) "exponent 2 < pi^2/6" true
    (Harmonic.generalized ~exponent:2.0 10_000 < 1.6449341)

let harmonic_monotone () =
  for n = 1 to 100 do
    Alcotest.(check bool) "increasing" true (Harmonic.number n > Harmonic.number (n - 1))
  done

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

let summary_known_values () =
  let s = Summary.of_array [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check int) "count" 8 (Summary.count s);
  check_float "mean" 5.0 (Summary.mean s);
  check_close 1e-9 "variance" (32.0 /. 7.0) (Summary.variance s);
  check_float "min" 2.0 (Summary.min_value s);
  check_float "max" 9.0 (Summary.max_value s);
  check_close 1e-9 "total" 40.0 (Summary.total s)

let summary_empty () =
  let s = Summary.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Summary.mean s));
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Summary.variance s));
  Alcotest.(check int) "count 0" 0 (Summary.count s)

let summary_single () =
  let s = Summary.of_array [| 42.0 |] in
  check_float "mean" 42.0 (Summary.mean s);
  Alcotest.(check bool) "variance undefined" true (Float.is_nan (Summary.variance s))

let summary_merge_matches_pooled () =
  let xs = Array.init 100 (fun i -> float_of_int (i * i) /. 7.0) in
  let a = Summary.of_array (Array.sub xs 0 40) in
  let b = Summary.of_array (Array.sub xs 40 60) in
  let merged = Summary.merge a b in
  let pooled = Summary.of_array xs in
  check_close 1e-9 "mean" (Summary.mean pooled) (Summary.mean merged);
  check_close 1e-6 "variance" (Summary.variance pooled) (Summary.variance merged);
  Alcotest.(check int) "count" (Summary.count pooled) (Summary.count merged);
  check_float "min" (Summary.min_value pooled) (Summary.min_value merged);
  check_float "max" (Summary.max_value pooled) (Summary.max_value merged)

let summary_merge_with_empty () =
  let a = Summary.of_array [| 1.0; 2.0; 3.0 |] in
  let e = Summary.create () in
  check_float "left empty" (Summary.mean a) (Summary.mean (Summary.merge e a));
  check_float "right empty" (Summary.mean a) (Summary.mean (Summary.merge a e))

let summary_sem_and_ci () =
  let s = Summary.of_array (Array.make 100 3.0) in
  check_float "sem of constant" 0.0 (Summary.sem s);
  check_float "ci of constant" 0.0 (Summary.ci95_halfwidth s)

let tdist_critical_values () =
  let module T = Ftr_stats.Tdist in
  check_float "df=1" 12.706 (T.critical95 ~df:1);
  check_float "df=4" 2.776 (T.critical95 ~df:4);
  check_float "df=30" 2.042 (T.critical95 ~df:30);
  check_float "large df ~ normal" 1.96 (T.critical95 ~df:10_000);
  Alcotest.check_raises "df 0" (Invalid_argument "Tdist.critical95: df must be >= 1") (fun () ->
      ignore (T.critical95 ~df:0))

let ci95_uses_student_t () =
  (* Three observations: df = 2, so the multiplier is 4.303, not 1.96. *)
  let s = Summary.of_array [| 1.0; 2.0; 3.0 |] in
  check_close 1e-6 "small-sample ci" (4.303 *. Summary.sem s) (Summary.ci95_halfwidth s);
  let one = Summary.of_array [| 5.0 |] in
  Alcotest.(check bool) "single sample has no ci" true (Float.is_nan (Summary.ci95_halfwidth one))

let summary_pp_renders () =
  let s = Summary.of_array [| 1.0; 2.0; 3.0 |] in
  let rendered = Format.asprintf "%a" Summary.pp s in
  Alcotest.(check bool) "mentions count and mean" true
    (let has needle =
       let nh = String.length rendered and nn = String.length needle in
       let rec go i = i + nn <= nh && (String.sub rendered i nn = needle || go (i + 1)) in
       go 0
     in
     has "n=3" && has "mean=2.0")

let summary_welford_stability () =
  (* Large offset: the naive sum-of-squares formula would lose precision. *)
  let offset = 1e9 in
  let s = Summary.create () in
  List.iter (fun x -> Summary.add s (offset +. x)) [ 1.0; 2.0; 3.0; 4.0 ];
  check_close 1e-6 "variance unaffected by offset" (5.0 /. 3.0) (Summary.variance s)

(* ------------------------------------------------------------------ *)
(* Quantiles                                                           *)
(* ------------------------------------------------------------------ *)

let quantile_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Quantile.median xs);
  check_float "q0" 1.0 (Quantile.compute xs 0.0);
  check_float "q1" 5.0 (Quantile.compute xs 1.0);
  check_float "q .25" 2.0 (Quantile.compute xs 0.25)

let quantile_interpolates () =
  let xs = [| 10.0; 20.0 |] in
  check_float "midpoint" 15.0 (Quantile.median xs);
  check_float "q .75" 17.5 (Quantile.compute xs 0.75)

let quantile_unsorted_input () =
  let xs = [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  check_float "median of unsorted" 3.0 (Quantile.median xs)

let quantile_five_number () =
  let mn, q1, med, q3, mx = Quantile.five_number [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "min" 1.0 mn;
  check_float "q1" 2.0 q1;
  check_float "median" 3.0 med;
  check_float "q3" 4.0 q3;
  check_float "max" 5.0 mx;
  check_float "iqr" 2.0 (Quantile.iqr [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let quantile_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Quantile.of_sorted: empty array") (fun () ->
      ignore (Quantile.compute [||] 0.5));
  Alcotest.check_raises "bad q" (Invalid_argument "Quantile.of_sorted: q must be in [0,1]")
    (fun () -> ignore (Quantile.compute [| 1.0 |] 1.5))

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let histogram_binning () =
  let h = Histogram.uniform ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Histogram.add h) [ 0.0; 1.9; 2.0; 5.5; 9.99 ];
  Alcotest.(check int) "bin 0" 2 (Histogram.count h 0);
  Alcotest.(check int) "bin 1" 1 (Histogram.count h 1);
  Alcotest.(check int) "bin 2" 1 (Histogram.count h 2);
  Alcotest.(check int) "bin 4" 1 (Histogram.count h 4);
  Alcotest.(check int) "total" 5 (Histogram.total h)

let histogram_overflow () =
  let h = Histogram.uniform ~lo:0.0 ~hi:1.0 ~bins:2 in
  Histogram.add h (-0.5);
  Histogram.add h 1.0;
  Histogram.add h 99.0;
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check int) "total includes both" 3 (Histogram.total h)

let histogram_log2 () =
  let h = Histogram.log2_bins ~max_value:16.0 in
  Histogram.add_int h 1;
  Histogram.add_int h 3;
  Histogram.add_int h 4;
  Histogram.add_int h 15;
  Alcotest.(check int) "bin [1,2)" 1 (Histogram.count h 0);
  Alcotest.(check int) "bin [2,4)" 1 (Histogram.count h 1);
  Alcotest.(check int) "bin [4,8)" 1 (Histogram.count h 2);
  Alcotest.(check int) "bin [8,16)" 1 (Histogram.count h 3)

let histogram_frequency () =
  let h = Histogram.uniform ~lo:0.0 ~hi:4.0 ~bins:4 in
  List.iter (Histogram.add h) [ 0.5; 0.6; 1.5; 3.2 ];
  check_float "freq bin 0" 0.5 (Histogram.frequency h 0);
  check_float "freq bin 3" 0.25 (Histogram.frequency h 3)

let histogram_bin_range () =
  let h = Histogram.uniform ~lo:0.0 ~hi:10.0 ~bins:5 in
  let lo, hi = Histogram.bin_range h 2 in
  check_float "lo" 4.0 lo;
  check_float "hi" 6.0 hi

let histogram_to_list () =
  let h = Histogram.uniform ~lo:0.0 ~hi:3.0 ~bins:3 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6 ];
  Alcotest.(check int) "three entries" 3 (List.length (Histogram.to_list h));
  match Histogram.to_list h with
  | [ ((l0, _), c0); (_, c1); (_, c2) ] ->
      Alcotest.(check (float 1e-9)) "first lo" 0.0 l0;
      Alcotest.(check (list int)) "counts" [ 1; 2; 0 ] [ c0; c1; c2 ]
  | _ -> Alcotest.fail "unexpected shape"

let histogram_rejects () =
  Alcotest.check_raises "one edge"
    (Invalid_argument "Histogram.create: need at least two edges") (fun () ->
      ignore (Histogram.create ~edges:[| 1.0 |]));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Histogram.create: edges must be strictly increasing") (fun () ->
      ignore (Histogram.create ~edges:[| 1.0; 1.0 |]))

(* ------------------------------------------------------------------ *)
(* Linear regression                                                   *)
(* ------------------------------------------------------------------ *)

let linreg_exact_line () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> 3.0 +. (2.0 *. x)) xs in
  let f = Linreg.fit ~xs ~ys in
  check_close 1e-9 "slope" 2.0 f.Linreg.slope;
  check_close 1e-9 "intercept" 3.0 f.Linreg.intercept;
  check_close 1e-9 "r2" 1.0 f.Linreg.r2;
  check_close 1e-9 "predict" 13.0 (Linreg.predict f 5.0)

let linreg_noisy_fit () =
  let xs = Array.init 50 float_of_int in
  let ys = Array.mapi (fun i x -> (1.5 *. x) +. if i mod 2 = 0 then 0.5 else -0.5) xs in
  let f = Linreg.fit ~xs ~ys in
  Alcotest.(check bool) "slope near 1.5" true (abs_float (f.Linreg.slope -. 1.5) < 0.01);
  Alcotest.(check bool) "good r2" true (f.Linreg.r2 > 0.99)

let linreg_loglog_exponent () =
  let xs = Array.init 20 (fun i -> float_of_int (i + 1)) in
  let ys = Array.map (fun x -> 5.0 *. (x ** 1.7)) xs in
  let f = Linreg.loglog_fit ~xs ~ys in
  check_close 1e-6 "exponent" 1.7 f.Linreg.slope

let linreg_rejects () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Linreg.fit: length mismatch") (fun () ->
      ignore (Linreg.fit ~xs:[| 1.0 |] ~ys:[| 1.0; 2.0 |]));
  Alcotest.check_raises "constant xs" (Invalid_argument "Linreg.fit: xs are constant")
    (fun () -> ignore (Linreg.fit ~xs:[| 2.0; 2.0 |] ~ys:[| 1.0; 2.0 |]));
  Alcotest.check_raises "too few" (Invalid_argument "Linreg.fit: need at least two points")
    (fun () -> ignore (Linreg.fit ~xs:[| 1.0 |] ~ys:[| 1.0 |]))

(* ------------------------------------------------------------------ *)
(* Goodness of fit                                                     *)
(* ------------------------------------------------------------------ *)

let gof_total_variation () =
  check_float "identical" 0.0
    (Gof.total_variation ~empirical:[| 0.5; 0.5 |] ~model:[| 0.5; 0.5 |]);
  check_float "disjoint" 1.0
    (Gof.total_variation ~empirical:[| 1.0; 0.0 |] ~model:[| 0.0; 1.0 |]);
  check_float "half" 0.25
    (Gof.total_variation ~empirical:[| 0.75; 0.25 |] ~model:[| 0.5; 0.5 |])

let gof_max_abs_error () =
  let err, idx = Gof.max_abs_error ~empirical:[| 0.1; 0.5; 0.4 |] ~model:[| 0.2; 0.2; 0.6 |] in
  check_float "largest gap" 0.3 err;
  Alcotest.(check int) "at index" 1 idx

let gof_ks_statistic () =
  check_float "identical" 0.0 (Gof.ks_statistic ~empirical:[| 0.5; 0.5 |] ~model:[| 0.5; 0.5 |]);
  check_float "disjoint" 1.0 (Gof.ks_statistic ~empirical:[| 1.0; 0.0 |] ~model:[| 0.0; 1.0 |])

let gof_chi_square () =
  check_float "perfect" 0.0 (Gof.chi_square ~observed:[| 10; 20 |] ~expected:[| 10.0; 20.0 |]);
  check_float "one-off" 0.1 (Gof.chi_square ~observed:[| 11; 20 |] ~expected:[| 10.0; 20.0 |]);
  Alcotest.check_raises "impossible cell"
    (Invalid_argument "Gof.chi_square: observation in a zero-expectation cell") (fun () ->
      ignore (Gof.chi_square ~observed:[| 1 |] ~expected:[| 0.0 |]))

let gof_ks_two_sample () =
  let a = Array.init 100 (fun i -> float_of_int i) in
  check_float "same sample" 0.0 (Gof.ks_two_sample a a);
  let b = Array.map (fun x -> x +. 1000.0) a in
  check_float "disjoint samples" 1.0 (Gof.ks_two_sample a b)

(* ------------------------------------------------------------------ *)
(* ASCII plots                                                         *)
(* ------------------------------------------------------------------ *)

module Plot = Ftr_stats.Ascii_plot

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let plot_contains_glyphs_and_legend () =
  let s = Plot.render [ Plot.series ~glyph:'*' ~label:"data" [ (1.0, 1.0); (2.0, 4.0) ] ] in
  Alcotest.(check bool) "has glyph" true (String.contains s '*');
  Alcotest.(check bool) "has legend" true (contains_substring s "[*] data")

let plot_corner_values_on_axis () =
  let s =
    Plot.render ~width:10 ~height:5
      [ Plot.series ~glyph:'x' ~label:"s" [ (0.0, 0.0); (10.0, 100.0) ] ]
  in
  Alcotest.(check bool) "max annotated" true (contains_substring s "100");
  Alcotest.(check bool) "x range shown" true (contains_substring s "0 .. 10")

let plot_empty_series () =
  Alcotest.(check string) "no points" "(no plottable points)\n"
    (Plot.render [ Plot.series ~glyph:'x' ~label:"s" [] ])

let plot_log_drops_nonpositive () =
  (* Only the positive point survives a log axis; the plot still renders. *)
  let s =
    Plot.render ~x_log:true
      [ Plot.series ~glyph:'x' ~label:"s" [ (-1.0, 1.0); (10.0, 2.0) ] ]
  in
  Alcotest.(check bool) "renders" true (String.contains s 'x')

let plot_rejects_tiny_canvas () =
  Alcotest.check_raises "too small" (Invalid_argument "Ascii_plot.render: canvas too small")
    (fun () ->
      ignore (Plot.render ~width:2 ~height:2 [ Plot.series ~glyph:'x' ~label:"s" [ (1.0, 1.0) ] ]))

let plot_single_point_degenerate_ranges () =
  let s = Plot.render [ Plot.series ~glyph:'#' ~label:"pt" [ (5.0, 5.0) ] ] in
  Alcotest.(check bool) "renders a single point" true (String.contains s '#')

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)
(* ------------------------------------------------------------------ *)

module Csv = Ftr_stats.Csv

let csv_plain_fields () =
  Alcotest.(check string) "no quoting" "a,b,c" (Csv.row_to_string [ "a"; "b"; "c" ])

let csv_escaping () =
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape_field "a,b");
  Alcotest.(check string) "quote doubled" "\"say \"\"hi\"\"\"" (Csv.escape_field "say \"hi\"");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape_field "a\nb");
  Alcotest.(check string) "clean untouched" "plain" (Csv.escape_field "plain")

let csv_document () =
  let s = Csv.to_string ~header:[ "x"; "y" ] ~rows:[ [ "1"; "2" ]; [ "3"; "4" ] ] in
  Alcotest.(check string) "document" "x,y\n1,2\n3,4\n" s

let csv_rejects_ragged_rows () =
  Alcotest.(check bool) "raises" true
    (match Csv.to_string ~header:[ "x"; "y" ] ~rows:[ [ "1" ] ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let csv_file_roundtrip () =
  let path = Filename.temp_file "ftrcsv_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Csv.write_file ~path ~header:[ "a" ] ~rows:[ [ "hello, world" ] ];
      let content = In_channel.with_open_text path In_channel.input_all in
      Alcotest.(check string) "written" "a\n\"hello, world\"\n" content)

let csv_number_fields () =
  Alcotest.(check string) "float" "3.14159" (Csv.float_field 3.14159);
  Alcotest.(check string) "int" "-42" (Csv.int_field (-42))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_summary_mean_in_range =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let s = Summary.of_array (Array.of_list xs) in
      let m = Summary.mean s in
      m >= Summary.min_value s -. 1e-9 && m <= Summary.max_value s +. 1e-9)

let prop_merge_commutes =
  QCheck.Test.make ~name:"merge is symmetric in mean" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 30) (float_range (-100.0) 100.0))
        (list_of_size (Gen.int_range 1 30) (float_range (-100.0) 100.0)))
    (fun (a, b) ->
      let sa = Summary.of_array (Array.of_list a) in
      let sb = Summary.of_array (Array.of_list b) in
      let m1 = Summary.mean (Summary.merge sa sb) in
      let m2 = Summary.mean (Summary.merge sb sa) in
      abs_float (m1 -. m2) < 1e-9)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantiles are monotone in q" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 40) (float_range (-100.0) 100.0))
    (fun xs ->
      let xs = Array.of_list xs in
      let q25 = Quantile.compute xs 0.25 in
      let q50 = Quantile.compute xs 0.5 in
      let q75 = Quantile.compute xs 0.75 in
      q25 <= q50 +. 1e-9 && q50 <= q75 +. 1e-9)

let prop_histogram_conserves_total =
  QCheck.Test.make ~name:"histogram total counts every observation" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 100) (float_range (-5.0) 15.0))
    (fun xs ->
      let h = Histogram.uniform ~lo:0.0 ~hi:10.0 ~bins:7 in
      List.iter (Histogram.add h) xs;
      let binned = List.fold_left (fun acc i -> acc + Histogram.count h i) 0
          (List.init (Histogram.bins h) Fun.id) in
      binned + Histogram.underflow h + Histogram.overflow h = List.length xs)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "stats"
    [
      ( "harmonic",
        [
          quick "small values" harmonic_small_values;
          quick "asymptotic approximation" harmonic_approx_accuracy;
          quick "table consistent" harmonic_table_consistent;
          quick "generalized" harmonic_generalized;
          quick "monotone" harmonic_monotone;
        ] );
      ( "summary",
        [
          quick "known values" summary_known_values;
          quick "empty" summary_empty;
          quick "single observation" summary_single;
          quick "merge matches pooled" summary_merge_matches_pooled;
          quick "merge with empty" summary_merge_with_empty;
          quick "sem and ci" summary_sem_and_ci;
          quick "student-t table" tdist_critical_values;
          quick "ci uses student-t" ci95_uses_student_t;
          quick "welford stability" summary_welford_stability;
          quick "pp renders" summary_pp_renders;
        ] );
      ( "quantile",
        [
          quick "basics" quantile_basics;
          quick "interpolation" quantile_interpolates;
          quick "unsorted input" quantile_unsorted_input;
          quick "five-number summary" quantile_five_number;
          quick "rejects bad input" quantile_rejects;
        ] );
      ( "histogram",
        [
          quick "binning" histogram_binning;
          quick "under/overflow" histogram_overflow;
          quick "log2 bins" histogram_log2;
          quick "frequency" histogram_frequency;
          quick "bin range" histogram_bin_range;
          quick "rejects bad edges" histogram_rejects;
          quick "to_list" histogram_to_list;
        ] );
      ( "linreg",
        [
          quick "exact line" linreg_exact_line;
          quick "noisy fit" linreg_noisy_fit;
          quick "log-log exponent" linreg_loglog_exponent;
          quick "rejects bad input" linreg_rejects;
        ] );
      ( "gof",
        [
          quick "total variation" gof_total_variation;
          quick "max abs error" gof_max_abs_error;
          quick "ks statistic" gof_ks_statistic;
          quick "chi-square" gof_chi_square;
          quick "two-sample ks" gof_ks_two_sample;
        ] );
      ( "ascii-plot",
        [
          quick "glyphs and legend" plot_contains_glyphs_and_legend;
          quick "axis annotations" plot_corner_values_on_axis;
          quick "empty series" plot_empty_series;
          quick "log axis drops non-positive" plot_log_drops_nonpositive;
          quick "rejects tiny canvas" plot_rejects_tiny_canvas;
          quick "single point" plot_single_point_degenerate_ranges;
        ] );
      ( "csv",
        [
          quick "plain fields" csv_plain_fields;
          quick "escaping" csv_escaping;
          quick "document" csv_document;
          quick "rejects ragged rows" csv_rejects_ragged_rows;
          quick "file roundtrip" csv_file_roundtrip;
          quick "number rendering" csv_number_fields;
        ] );
      ( "properties",
        List.map (fun p -> QCheck_alcotest.to_alcotest p)
          [
            prop_summary_mean_in_range;
            prop_merge_commutes;
            prop_quantile_monotone;
            prop_histogram_conserves_total;
          ] );
    ]
