(* ftr-lint: disable-file R2 test assertions compare small concrete values *)
(* The exec subsystem's contract: a sweep's merged output is a pure
   function of (seed, grid) — never of the worker count, the chunking or
   the FTR_EXEC_SEQ fallback. The qcheck property pins that down
   byte-for-byte (Marshal, so NaN payloads compare too); the rest covers
   the seed-derivation rules, pool error paths, the obs wiring and the
   checkpoint journal's crash tolerance. *)

module Pool = Ftr_exec.Pool
module Seed = Ftr_exec.Seed
module Sweep = Ftr_exec.Sweep
module Checkpoint = Ftr_exec.Checkpoint
module Rng = Ftr_prng.Rng
module Json = Ftr_obs.Json
module E = Ftr_core.Experiment
module Network = Ftr_core.Network

let bytes_equal a b = Marshal.to_string a [] = Marshal.to_string b []

(* FTR_EXEC_SEQ is read per call, so a putenv flip takes effect
   immediately; restore the previous value even if the body fails. *)
let with_seq_forced on f =
  let old = Sys.getenv_opt "FTR_EXEC_SEQ" in
  Unix.putenv "FTR_EXEC_SEQ" (if on then "1" else "0");
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "FTR_EXEC_SEQ" (match old with Some v -> v | None -> "0"))
    f

(* ------------------------------------------------------------------ *)
(* Seed derivation                                                     *)
(* ------------------------------------------------------------------ *)

let seed_scheme () =
  (* Pure: the same (seed, index) always yields the same stream. *)
  let a = Seed.rng_for ~seed:5 ~index:3 and b = Seed.rng_for ~seed:5 ~index:3 in
  Alcotest.(check int64) "pure in (seed, index)" (Rng.bits64 a) (Rng.bits64 b);
  (* Distinct indices (and the root) all start differently. *)
  let first i = Rng.bits64 (Seed.rng_for ~seed:5 ~index:i) in
  let root_first = Rng.bits64 (Seed.root ~seed:5) in
  let seen = Hashtbl.create 64 in
  for i = 0 to 63 do
    let f = first i in
    Alcotest.(check bool)
      (Printf.sprintf "index %d differs from the root stream" i)
      true (f <> root_first);
    Alcotest.(check bool) (Printf.sprintf "index %d stream is fresh" i) false (Hashtbl.mem seen f);
    Hashtbl.add seen f ()
  done;
  (* Different seeds decorrelate the same index. *)
  Alcotest.(check bool) "seeds decorrelate" true
    (Rng.bits64 (Seed.rng_for ~seed:5 ~index:0) <> Rng.bits64 (Seed.rng_for ~seed:6 ~index:0));
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Seed.rng_for: index must be non-negative") (fun () ->
      ignore (Seed.rng_for ~seed:5 ~index:(-1)))

(* The FTR_CHECK regression guard inside map_seeded must stay quiet on the
   sanctioned derivation (it exists to catch a future refactor handing a
   job the root generator). *)
let seeded_guard () =
  Ftr_debug.Debug.with_mode true @@ fun () ->
  let r = Pool.map_seeded ~jobs:2 ~seed:9 ~count:8 (fun ~index:_ ~rng -> Rng.bits64 rng) in
  Alcotest.(check int) "all jobs ran" 8 (Array.length r)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let pool_map () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map ~count:0 (fun i -> i));
  Alcotest.(check (array int)) "index order under jobs=4"
    (Array.init 100 (fun i -> i * i))
    (Pool.map ~jobs:4 ~count:100 (fun i -> i * i));
  Alcotest.check_raises "negative count" (Invalid_argument "Pool.map: count must be non-negative")
    (fun () -> ignore (Pool.map ~count:(-1) (fun i -> i)));
  Alcotest.check_raises "zero jobs" (Invalid_argument "Pool.map: jobs must be >= 1") (fun () ->
      ignore (Pool.map ~jobs:0 ~count:4 (fun i -> i)))

let pool_exception () =
  match Pool.map ~jobs:2 ~count:16 (fun i -> if i = 7 then failwith "boom" else i) with
  | _ -> Alcotest.fail "a job raised but map returned"
  | exception Stdlib.Failure m -> Alcotest.(check string) "job's own exception surfaces" "boom" m

(* A job that itself maps must degrade to the sequential path instead of
   spawning a second generation of domains — and still merge correctly. *)
let pool_nested () =
  let r =
    Pool.map ~jobs:2 ~count:4 (fun i ->
        Array.to_list (Pool.map ~jobs:4 ~count:3 (fun j -> (10 * i) + j)))
  in
  Alcotest.(check (array (list int)))
    "nested results intact"
    [| [ 0; 1; 2 ]; [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ] |]
    r

let pool_sequential_fallbacks () =
  with_seq_forced true (fun () ->
      Alcotest.(check bool) "FTR_EXEC_SEQ forces the fallback" true (Pool.sequential_forced ());
      Alcotest.(check int) "default_jobs is 1 under the fallback" 1 (Pool.default_jobs ()));
  with_seq_forced false (fun () ->
      Alcotest.(check bool) "fallback released" false (Pool.sequential_forced ()))

let pool_metrics () =
  Ftr_obs.Flag.with_mode true @@ fun () ->
  Ftr_obs.Metrics.reset Ftr_obs.Metrics.default;
  Ftr_obs.Span.reset ();
  (* Instrumented code gates on [Flag.enabled] (Metrics itself records
     unconditionally); worker-domain suppression flips that gate off. *)
  let inside = "exec_test_inside_job" in
  let instrumented i =
    if Ftr_obs.Flag.enabled () then Ftr_obs.Metrics.incr inside;
    i
  in
  ignore (Pool.map ~jobs:2 ~count:8 instrumented);
  Alcotest.(check int) "coordinator counts completed jobs" 8
    (Ftr_obs.Metrics.counter_value "exec_jobs_completed_total");
  (* Worker domains run with telemetry suppressed (the registries are not
     domain-safe), so job-side metrics vanish on the parallel path... *)
  Alcotest.(check int) "worker-side telemetry suppressed" 0
    (Ftr_obs.Metrics.counter_value inside);
  (match Ftr_obs.Span.find "exec.pool.run" with
  | Some s -> Alcotest.(check bool) "pool span timed" true (s.Ftr_obs.Span.count >= 1)
  | None -> Alcotest.fail "no exec.pool.run span recorded");
  (* ...and is recorded as usual on the sequential path. The determinism
     contract covers merged results, not telemetry. *)
  ignore (Pool.map ~jobs:1 ~count:4 instrumented);
  Alcotest.(check int) "sequential path records job-side telemetry" 4
    (Ftr_obs.Metrics.counter_value inside)

(* ------------------------------------------------------------------ *)
(* Determinism (the headline property)                                 *)
(* ------------------------------------------------------------------ *)

let qcheck_determinism =
  QCheck.Test.make ~count:30
    ~name:"merged results byte-identical for jobs in {1,2,4} and FTR_EXEC_SEQ=1"
    QCheck.(pair small_int (int_range 0 40))
    (fun (seed, count) ->
      let job ~index ~rng =
        Printf.sprintf "%d:%Lx:%Lx" index (Rng.bits64 rng) (Rng.bits64 rng)
      in
      let run ?jobs () = Pool.map_seeded ?jobs ~seed ~count job in
      let reference = run ~jobs:1 () in
      bytes_equal reference (run ~jobs:2 ())
      && bytes_equal reference (run ~jobs:4 ())
      && with_seq_forced true (fun () -> bytes_equal reference (run ())))

(* ------------------------------------------------------------------ *)
(* Sweep grids                                                         *)
(* ------------------------------------------------------------------ *)

let grids () =
  Alcotest.(check (list (pair int string)))
    "grid2 row-major"
    [ (1, "a"); (1, "b"); (2, "a"); (2, "b") ]
    (Sweep.grid2 [ 1; 2 ] [ "a"; "b" ]);
  let g3 = Sweep.grid3 [ 1; 2 ] [ 3; 4 ] [ 5; 6; 7 ] in
  Alcotest.(check int) "grid3 size" 12 (List.length g3);
  Alcotest.(check bool) "grid3 first/last" true
    (List.hd g3 = (1, 3, 5) && List.nth g3 11 = (2, 4, 7));
  Alcotest.(check int) "grid4 size" 12
    (List.length (Sweep.grid4 [ 1; 2 ] [ 3 ] [ 4; 5 ] [ 6; 7; 8 ]));
  let s = Sweep.create ~run:(fun ~index ~rng:_ p -> (index, p)) [ "x"; "y"; "z" ] in
  Alcotest.(check int) "sweep size" 3 (Sweep.size s);
  Alcotest.(check (array (pair int string)))
    "run hands each job its own index"
    [| (0, "x"); (1, "y"); (2, "z") |]
    (Sweep.run ~jobs:2 ~seed:4 s)

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)
(* ------------------------------------------------------------------ *)

(* Exact float codec for the journal: IEEE bits in hex, because
   Json.Float's decimal rendering is lossy and resume must reproduce the
   uninterrupted run byte for byte. *)
let encode (i, f) =
  Json.Obj [ ("i", Json.Int i); ("f", Json.String (Printf.sprintf "%Lx" (Int64.bits_of_float f))) ]

let decode j =
  match (Json.member "i" j, Json.member "f" j) with
  | Some (Json.Int i), Some (Json.String s) -> (
      match Int64.of_string_opt ("0x" ^ s) with
      | Some b -> Some (i, Int64.float_of_bits b)
      | None -> None)
  | _ -> None

let float_sweep = Sweep.create ~run:(fun ~index ~rng _p -> (index, Rng.float rng)) (List.init 9 Fun.id)

let checkpoint_roundtrip () =
  (* A nested path exercises the shared Csv.mkdir_p on the journal dir. *)
  let root = Filename.temp_file "ftr_exec_ck" "" in
  Sys.remove root;
  let path = Filename.concat (Filename.concat root "nested") "journal.jsonl" in
  let seed = 11 in
  let plain = Sweep.run ~jobs:1 ~seed float_sweep in
  let first = Sweep.run_checkpointed ~jobs:2 ~wave:3 ~path ~seed ~encode ~decode float_sweep in
  Alcotest.(check bool) "checkpointed run = plain run" true (bytes_equal plain first);
  (* Kill simulation: drop the last full record and leave a torn line. *)
  let lines = In_channel.with_open_text path In_channel.input_lines in
  Alcotest.(check int) "header + one record per job" 10 (List.length lines);
  Out_channel.with_open_text path (fun oc ->
      List.iteri
        (fun i l ->
          if i < List.length lines - 1 then begin
            output_string oc l;
            output_char oc '\n'
          end)
        lines;
      output_string oc "{\"job\":8,\"res");
  let resumed = Sweep.run_checkpointed ~path ~seed ~encode ~decode float_sweep in
  Alcotest.(check bool) "resume from truncated journal = plain run" true
    (bytes_equal plain resumed);
  Sys.remove path

let checkpoint_header_mismatch () =
  let path = Filename.temp_file "ftr_exec_hdr" ".jsonl" in
  let t = Checkpoint.open_ ~fresh:true ~path ~seed:1 ~count:4 () in
  Checkpoint.append t ~index:0 (Json.Int 42);
  Checkpoint.close t;
  (try
     ignore (Checkpoint.open_ ~path ~seed:2 ~count:4 ());
     Alcotest.fail "a journal for another seed was accepted"
   with Stdlib.Failure _ -> ());
  (try
     ignore (Checkpoint.open_ ~path ~seed:1 ~count:5 ());
     Alcotest.fail "a journal for another grid size was accepted"
   with Stdlib.Failure _ -> ());
  (* fresh:true is the sanctioned way to discard a stale journal. *)
  let t2 = Checkpoint.open_ ~fresh:true ~path ~seed:2 ~count:4 () in
  Alcotest.(check int) "fresh journal starts empty" 0 (List.length (Checkpoint.completed t2));
  Checkpoint.close t2;
  Sys.remove path

let checkpoint_tolerates_garbage () =
  let path = Filename.temp_file "ftr_exec_garbage" ".jsonl" in
  let t = Checkpoint.open_ ~fresh:true ~path ~seed:7 ~count:3 () in
  Checkpoint.append t ~index:0 (Json.Int 10);
  Checkpoint.close t;
  let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 path in
  (* A torn append, an out-of-range index, a duplicate of job 0. *)
  output_string oc "{\"job\":1,\"result\"\n";
  output_string oc "{\"job\":9,\"result\":1}\n";
  output_string oc "{\"job\":0,\"result\":99}\n";
  close_out oc;
  let t2 = Checkpoint.open_ ~path ~seed:7 ~count:3 () in
  (match Checkpoint.completed t2 with
  | [ (0, Json.Int 10) ] -> ()
  | cs -> Alcotest.failf "expected only job 0's first record, got %d record(s)" (List.length cs));
  Checkpoint.close t2;
  Sys.remove path

(* The busy-time clock is injectable (Clock.set); with a constant clock
   every worker's busy span collapses to exactly 0.0, which only happens
   if the pool reads time through the seam and not Unix.gettimeofday
   directly. The injected function must be domain-safe — here it is
   pure. *)
let pool_clock_injection () =
  Ftr_obs.Flag.with_mode true @@ fun () ->
  Ftr_obs.Metrics.reset Ftr_obs.Metrics.default;
  Ftr_exec.Clock.set (fun () -> 42.0);
  Fun.protect ~finally:Ftr_exec.Clock.reset @@ fun () ->
  ignore (Pool.map ~jobs:2 ~count:8 (fun i -> i * i));
  let busy =
    List.filter_map
      (fun it ->
        if String.equal it.Ftr_obs.Metrics.item_name "exec_worker_busy_seconds" then
          match it.Ftr_obs.Metrics.item_view with
          | Ftr_obs.Metrics.Histogram_view v -> Some v
          | _ -> None
        else None)
      (Ftr_obs.Metrics.snapshot ())
  in
  Alcotest.(check int) "one busy histogram per worker" 2 (List.length busy);
  List.iter
    (fun v ->
      Alcotest.(check int) "one observation" 1 v.Ftr_obs.Metrics.h_count;
      Alcotest.(check (float 0.0)) "injected clock makes busy exactly zero" 0.0
        v.Ftr_obs.Metrics.h_sum)
    busy

(* ------------------------------------------------------------------ *)
(* Experiment parallel drivers                                         *)
(* ------------------------------------------------------------------ *)

let experiment_parallel () =
  let f5 jobs = E.figure5_par ~jobs ~networks:2 ~n:256 ~links:4 ~seed:3 () in
  Alcotest.(check bool) "figure5_par jobs-invariant" true (bytes_equal (f5 1) (f5 3));
  let rng = Rng.of_int 7 in
  let net = Network.build_ideal ~n:512 ~links:6 rng in
  let pairs = E.random_live_pairs rng Ftr_core.Failure.none ~n:512 ~messages:200 in
  let m jobs = E.measure_par ~jobs ~pairs ~seed:11 net in
  Alcotest.(check bool) "measure_par jobs-invariant" true (bytes_equal (m 1) (m 4));
  let f6 jobs = E.figure6_par ~jobs ~n:256 ~networks:2 ~messages:40 ~fractions:[ 0.0; 0.4 ] ~seed:5 () in
  Alcotest.(check bool) "figure6_par jobs-invariant" true (bytes_equal (f6 1) (f6 2));
  let t1 jobs =
    E.table1_grid ~jobs ~ns:[ 64; 128 ] ~big:256 ~networks:1 ~messages:30 ~trials:20 ~seed:2 ()
  in
  Alcotest.(check bool) "table1_grid jobs-invariant" true (bytes_equal (t1 1) (t1 3))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "exec"
    [
      ( "seed",
        [ quick "derivation scheme" seed_scheme; quick "FTR_CHECK root guard stays quiet" seeded_guard ] );
      ( "pool",
        [
          quick "map basics and index order" pool_map;
          quick "exception propagation" pool_exception;
          quick "nested map degrades to sequential" pool_nested;
          quick "FTR_EXEC_SEQ fallback" pool_sequential_fallbacks;
          quick "coordinator metrics, worker suppression" pool_metrics;
          quick "busy clock is injectable" pool_clock_injection;
        ] );
      ("determinism", [ QCheck_alcotest.to_alcotest qcheck_determinism ]);
      ("sweep", [ quick "grids are row-major" grids ]);
      ( "checkpoint",
        [
          quick "resume round-trip through a kill" checkpoint_roundtrip;
          quick "header mismatch refused" checkpoint_header_mismatch;
          quick "torn and bogus records skipped" checkpoint_tolerates_garbage;
        ] );
      ("experiment", [ quick "parallel drivers are jobs-invariant" experiment_parallel ]);
    ]
