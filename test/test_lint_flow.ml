(* Flow-stage (D1-D4) analyzer tests. The rules are CFG- and
   dataflow-driven, so like the typed stage they need real .cmt files:
   the compiled fixtures under test/lint_fixture/ carry one positive and
   one negative per rule, analyzed exactly as `dune build @lint-flow`
   analyzes the real tree. The suite also checks the baseline's flow
   namespace, stage-selective regeneration, the incremental cache (a
   fully warm rerun analyzes zero units), the CLI's usage errors, the
   byte-identity of lint.json, and — as a qcheck property — that the
   finding stream is byte-identical across --jobs 1/2/4, FTR_EXEC_SEQ=1
   and cache cold/warm. *)

module Finding = Ftr_lint.Finding
module Driver = Ftr_lint.Driver
module Baseline = Ftr_lint.Baseline
module Flow_driver = Ftr_lint.Flow_driver

let contains s sub = Option.is_some (Ftr_lint.Suppress.find_sub s sub)

let root =
  lazy
    (let rec up d =
       if Sys.file_exists (Filename.concat d "dune-project") then d
       else
         let parent = Filename.dirname d in
         if String.equal parent d then
           Alcotest.fail "no dune-project above the test's working directory"
         else up parent
     in
     up (Sys.getcwd ()))

let analyze_fixture ?jobs ?cache_dir () =
  Flow_driver.analyze ?jobs ?cache_dir ~root:(Lazy.force root) ~dirs:[ "test/lint_fixture" ] ()

(* The fixture corpus is analyzed once; each rule test filters the
   shared finding stream by file. *)
let fixture = lazy (analyze_fixture ())

let fixture_findings file =
  let kept, _ = Lazy.force fixture in
  List.filter (fun ((f : Finding.t), _) -> String.equal (Filename.basename f.file) file) kept

let findings_of file =
  List.map
    (fun ((f : Finding.t), _) -> (Finding.rule_id f.rule, f.line, f.message))
    (fixture_findings file)

let test_corpus () =
  let _, (stats : Flow_driver.stats) = Lazy.force fixture in
  Alcotest.(check int) "all twelve fixture units loaded" 12 stats.Flow_driver.fl_units;
  Alcotest.(check int) "all analyzed on a cache-less run" 12 stats.Flow_driver.fl_analyzed;
  Alcotest.(check int) "nothing cached on a cache-less run" 0 stats.Flow_driver.fl_cached

(* D1: the ungated write and the post-join write fire; the gated write,
   the gate-variable conjunction and the closure capturing it do not. *)
let test_d1 () =
  match findings_of "d1_gate.ml" with
  | [ ("D1", l1, m1); ("D1", l2, m2) ] ->
      Alcotest.(check int) "the ungated write" 8 l1;
      Alcotest.(check int) "the post-join write" 14 l2;
      List.iter
        (fun m ->
          Alcotest.(check bool) "message points at the gate" true (contains m "Flag.enabled"))
        [ m1; m2 ]
  | fs -> Alcotest.failf "expected exactly the two D1 positives, got %d findings" (List.length fs)

(* D2 route-scratch: the leak on the tracking path fires; the
   Fun.protect ~finally idiom is recognized as releasing on all paths. *)
let test_d2_scratch () =
  match findings_of "d2_scratch.ml" with
  | [ ("D2", 23, m) ] ->
      Alcotest.(check bool) "message names the restore seam" true (contains m "restore_scratch")
  | fs -> Alcotest.failf "expected exactly one D2 leak, got %d findings" (List.length fs)

(* D2 snapshot typestate: routing an unvalidated load fires at the use
   site; validated and validate:true paths stay silent. *)
let test_d2_snapshot () =
  match findings_of "d2_snapshot.ml" with
  | [ ("D2", 22, m) ] ->
      Alcotest.(check bool) "message names the validators" true (contains m "Check.snapshot")
  | fs -> Alcotest.failf "expected exactly one D2 use finding, got %d findings" (List.length fs)

(* D3: the never-headed constructor is reported at its declaration and
   the raw envelope-queue mutation at the mutation site. *)
let test_d3 () =
  match findings_of "d3_message.ml" with
  | [ ("D3", 9, m1); ("D3", 18, m2) ] ->
      Alcotest.(check bool) "names the swallowed constructor" true (contains m1 "Query");
      Alcotest.(check bool) "points at the catch-all dispatch" true (contains m1 "catch-all");
      Alcotest.(check bool) "routes sends through the mailbox" true (contains m2 "Mailbox.post")
  | fs -> Alcotest.failf "expected exactly the two D3 positives, got %d findings" (List.length fs)

(* D4: the invariant reload in the hot loop fires; the with_mode-dirty
   loop stays silent. *)
let test_d4 () =
  match findings_of "d4_loop.ml" with
  | [ ("D4", 10, m) ] ->
      Alcotest.(check bool) "suggests hoisting" true (contains m "hoist")
  | fs -> Alcotest.failf "expected exactly one D4 finding, got %d findings" (List.length fs)

(* Baseline: flow findings round-trip under the `flow:` namespace. *)
let test_flow_baseline () =
  let kept = fixture_findings "d1_gate.ml" @ fixture_findings "d4_loop.ml" in
  let entries = List.map (fun (f, line) -> Baseline.entry_of_finding ~source_line:line f) kept in
  let path = Filename.temp_file "ftr_lint_flow" ".baseline" in
  Baseline.save path entries;
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let reloaded = Baseline.load path in
  Sys.remove path;
  Alcotest.(check bool) "entries saved under the flow namespace" true (contains text "flow:D1");
  Alcotest.(check int) "round-trip preserves entries" (List.length entries)
    (List.length reloaded);
  List.iter
    (fun e ->
      Alcotest.(check string) "entry stage is flow" "flow"
        (Finding.stage_id (Baseline.entry_stage e)))
    reloaded;
  let fresh, baselined, stale = Baseline.apply reloaded kept in
  Alcotest.(check int) "all findings absorbed" 0 (List.length fresh);
  Alcotest.(check int) "all entries used" (List.length entries) baselined;
  Alcotest.(check int) "nothing stale" 0 stale

(* --update-baseline is stage-selective for the flow stage too:
   regenerating it rewrites flow entries (to none — the tree is clean)
   and carries the other stages' entries over untouched. *)
let test_update_baseline () =
  let cwd = Sys.getcwd () in
  Fun.protect ~finally:(fun () -> Sys.chdir cwd) @@ fun () ->
  Sys.chdir (Lazy.force root);
  let fake rule file = ({ Finding.file; line = 1; col = 0; rule; message = "m" }, "let x = 1") in
  let entry (f, l) = Baseline.entry_of_finding ~source_line:l f in
  let path = Filename.temp_file "ftr_lint_flow_regen" ".baseline" in
  Baseline.save path [ entry (fake Finding.R1 "lib/a.ml"); entry (fake Finding.D1 "lib/b.ml") ];
  let code =
    Driver.run ~write_baseline:path ~quiet:true ~stages:[ Finding.Flow ]
      ~dirs:[ "lib"; "bin"; "bench" ] ()
  in
  let reloaded = Baseline.load path in
  Sys.remove path;
  Alcotest.(check int) "regeneration exits 0" 0 code;
  match reloaded with
  | [ e ] ->
      Alcotest.(check string) "stale flow entry dropped, syntactic entry kept" "syntactic"
        (Finding.stage_id (Baseline.entry_stage e))
  | es -> Alcotest.failf "expected exactly the carried-over entry, got %d" (List.length es)

(* The CLI exits 2 with a usage message on an unknown --stage. *)
let test_cli_unknown_stage () =
  let cwd = Sys.getcwd () in
  Fun.protect ~finally:(fun () -> Sys.chdir cwd) @@ fun () ->
  Sys.chdir (Lazy.force root);
  (* Under `dune runtest` the sandbox root holds the exe directly (it
     is a declared dep); under `dune exec` from the source tree it only
     exists inside _build. *)
  let exe =
    List.find Sys.file_exists
      [ "bin/ftr_lint.exe"; Filename.concat "_build/default" "bin/ftr_lint.exe" ]
  in
  let err = Filename.temp_file "ftr_lint_usage" ".err" in
  let code = Sys.command (Printf.sprintf "%s --stage bogus lib 2> %s" exe err) in
  let ic = open_in_bin err in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove err;
  Alcotest.(check int) "exit status 2" 2 code;
  Alcotest.(check bool) "names the bad stage" true (contains text "bogus");
  Alcotest.(check bool) "prints usage" true (contains text "usage: ftr_lint")

(* The incremental cache: a cold run analyzes everything and a warm
   rerun analyzes zero units, reproducing the exact finding stream. *)
let render findings =
  String.concat "\n"
    (List.map (fun ((f : Finding.t), line) -> Finding.to_string f ^ "\t" ^ line) findings)

let test_cache_warm () =
  let dir = Filename.temp_file "ftr_lint_cache" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
  @@ fun () ->
  let cold, (cs : Flow_driver.stats) = analyze_fixture ~cache_dir:dir () in
  let warm, (ws : Flow_driver.stats) = analyze_fixture ~cache_dir:dir () in
  Alcotest.(check int) "cold run analyzes every unit" 12 cs.Flow_driver.fl_analyzed;
  Alcotest.(check int) "warm run analyzes zero units" 0 ws.Flow_driver.fl_analyzed;
  Alcotest.(check int) "warm run serves every unit from cache" 12 ws.Flow_driver.fl_cached;
  Alcotest.(check string) "identical finding streams" (render cold) (render warm)

(* qcheck: the rendered finding stream is byte-identical across
   --jobs 1/2/4, FTR_EXEC_SEQ=1 and cache cold/warm. *)
let prop_jobs_cache_identity =
  let reference = lazy (render (fst (analyze_fixture ~jobs:1 ()))) in
  QCheck.Test.make ~name:"flow findings byte-identical across jobs/seq/cache" ~count:8
    QCheck.(triple (int_range 0 2) bool bool)
    (fun (jobs_idx, seq, use_cache) ->
      let jobs = [| 1; 2; 4 |].(jobs_idx) in
      let saved = Sys.getenv_opt "FTR_EXEC_SEQ" in
      Unix.putenv "FTR_EXEC_SEQ" (if seq then "1" else "0");
      Fun.protect ~finally:(fun () ->
          Unix.putenv "FTR_EXEC_SEQ" (Option.value ~default:"0" saved))
      @@ fun () ->
      let run () =
        if not use_cache then render (fst (analyze_fixture ~jobs ()))
        else begin
          let dir = Filename.temp_file "ftr_lint_qc" "" in
          Sys.remove dir;
          Unix.mkdir dir 0o755;
          Fun.protect ~finally:(fun () ->
              Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
              Unix.rmdir dir)
          @@ fun () ->
          let _cold = analyze_fixture ~jobs ~cache_dir:dir () in
          render (fst (analyze_fixture ~jobs ~cache_dir:dir ()))
        end
      in
      String.equal (Lazy.force reference) (run ()))

(* Self-application: the flow stage over the real tree is clean modulo
   the flow entries of the committed baseline (of which there are none —
   the flow baseline ships empty). *)
let test_self_application () =
  let root = Lazy.force root in
  let findings, (stats : Flow_driver.stats) =
    Flow_driver.analyze ~root ~dirs:[ "lib"; "bin"; "bench" ] ()
  in
  Alcotest.(check bool) "a real corpus loaded" true (stats.Flow_driver.fl_units >= 40);
  let entries =
    List.filter
      (fun e -> match Baseline.entry_stage e with Finding.Flow -> true | _ -> false)
      (Baseline.load (Filename.concat root "lint.baseline"))
  in
  Alcotest.(check int) "the flow baseline ships empty" 0 (List.length entries);
  let fresh, _, stale = Baseline.apply entries findings in
  Alcotest.(check (list string))
    "no non-baselined flow findings in the tree" []
    (List.map (fun (f, _) -> Finding.to_string f) fresh);
  Alcotest.(check int) "no stale flow baseline entries" 0 stale

let () =
  Alcotest.run "lint_flow"
    [
      ( "rules",
        [
          Alcotest.test_case "fixture corpus loads" `Quick test_corpus;
          Alcotest.test_case "D1 gate-dominance" `Quick test_d1;
          Alcotest.test_case "D2 route-scratch leak" `Quick test_d2_scratch;
          Alcotest.test_case "D2 snapshot typestate" `Quick test_d2_snapshot;
          Alcotest.test_case "D3 message protocol" `Quick test_d3;
          Alcotest.test_case "D4 loop-invariant reload" `Quick test_d4;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "flow baseline namespace" `Quick test_flow_baseline;
          Alcotest.test_case "stage-selective --update-baseline" `Quick test_update_baseline;
          Alcotest.test_case "CLI usage error on unknown stage" `Quick test_cli_unknown_stage;
          Alcotest.test_case "warm cache analyzes zero units" `Quick test_cache_warm;
          QCheck_alcotest.to_alcotest prop_jobs_cache_identity;
        ] );
      ("self", [ Alcotest.test_case "flow stage clean on the tree" `Quick test_self_application ]);
    ]
