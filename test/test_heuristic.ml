module Network = Ftr_core.Network
module Heuristic = Ftr_core.Heuristic
module Route = Ftr_core.Route
module Gof = Ftr_stats.Gof
module Rng = Ftr_prng.Rng

let build ?(n = 1024) ?(links = 8) ?replacement ?arrival seed =
  Heuristic.build ?replacement ?arrival ~n ~links (Rng.of_int seed)

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)
(* ------------------------------------------------------------------ *)

let constructed_network_shape () =
  let n = 512 and links = 6 in
  let net = build ~n ~links 1 in
  Alcotest.(check int) "size" n (Network.size net);
  Alcotest.(check bool) "full" true (Network.is_full net);
  for u = 0 to n - 1 do
    let expected = links + (if u = 0 || u = n - 1 then 1 else 2) in
    Alcotest.(check int) "degree" expected (Array.length (Network.neighbors net u))
  done

let constructed_network_no_self_loops () =
  let net = build 2 in
  for u = 0 to Network.size net - 1 do
    Array.iter
      (fun v -> Alcotest.(check bool) "no self loop" true (v <> u))
      (Network.neighbors net u)
  done

let constructed_network_connected () =
  let net = build ~n:256 ~links:4 3 in
  Alcotest.(check bool) "strongly connected" true
    (Ftr_graph.Bfs.is_strongly_connected (Network.to_adjacency net))

let constructed_network_routable () =
  let n = 1024 in
  let net = build ~n 4 in
  let r = Rng.of_int 99 in
  for _ = 1 to 200 do
    let src = Rng.int r n and dst = Rng.int r n in
    Alcotest.(check bool) "delivers" true (Route.delivered (Route.route net ~src ~dst))
  done

let deterministic_by_seed () =
  let a = build ~n:128 ~links:3 7 and b = build ~n:128 ~links:3 7 in
  for u = 0 to 127 do
    Alcotest.(check (array int)) "same construction" (Network.neighbors a u)
      (Network.neighbors b u)
  done

let rejects_bad_parameters () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Heuristic.build: need at least two nodes") (fun () ->
      ignore (build ~n:1 8));
  Alcotest.check_raises "no links"
    (Invalid_argument "Heuristic.build: need at least one long link") (fun () ->
      ignore (build ~links:0 8))

(* ------------------------------------------------------------------ *)
(* Distribution quality (Figure 5)                                     *)
(* ------------------------------------------------------------------ *)

let averaged_distribution n links networks seed =
  let sum = Array.make n 0.0 in
  for i = 0 to networks - 1 do
    let pmf = Heuristic.length_distribution (build ~n ~links (seed + i)) in
    Array.iteri (fun d p -> sum.(d) <- sum.(d) +. p) pmf
  done;
  Array.map (fun s -> s /. float_of_int networks) sum

let derived_tracks_ideal () =
  let n = 2048 and links = 11 in
  let derived = averaged_distribution n links 3 10 in
  let ideal = Heuristic.ideal_distribution ~n () in
  let err, at = Gof.max_abs_error ~empirical:derived ~model:ideal in
  (* The paper reports a maximum absolute error of about 0.022 (at length
     2) at n = 2^14; allow headroom for the smaller test size. *)
  Alcotest.(check bool) (Printf.sprintf "max error %.4f at %d" err at) true (err < 0.05);
  Alcotest.(check bool) "worst error at a short length" true (at <= 4)

let derived_distribution_is_pmf () =
  let pmf = Heuristic.length_distribution (build ~n:512 ~links:6 20) in
  let total = Array.fold_left ( +. ) 0.0 pmf in
  Alcotest.(check (float 1e-9)) "sums to one" 1.0 total;
  Array.iter (fun p -> Alcotest.(check bool) "non-negative" true (p >= 0.0)) pmf

let ideal_distribution_is_pmf () =
  let pmf = Heuristic.ideal_distribution ~n:512 () in
  let total = Array.fold_left ( +. ) 0.0 pmf in
  Alcotest.(check (float 1e-9)) "sums to one" 1.0 total;
  Alcotest.(check (float 1e-12)) "index 0 unused" 0.0 pmf.(0);
  (* Strictly decreasing in d for exponent 1. *)
  for d = 2 to 511 do
    Alcotest.(check bool) "decreasing" true (pmf.(d) < pmf.(d - 1))
  done

let ideal_distribution_harmonic_head () =
  let n = 1000 in
  let pmf = Heuristic.ideal_distribution ~n () in
  let h = Ftr_stats.Harmonic.number (n - 1) in
  Alcotest.(check (float 1e-9)) "d=1" (1.0 /. h) pmf.(1);
  Alcotest.(check (float 1e-9)) "d=10" (1.0 /. (10.0 *. h)) pmf.(10)

let oldest_strategy_also_tracks () =
  let n = 2048 and links = 11 in
  let sum = Array.make n 0.0 in
  for i = 0 to 2 do
    let pmf =
      Heuristic.length_distribution (build ~replacement:Heuristic.Oldest ~n ~links (30 + i))
    in
    Array.iteri (fun d p -> sum.(d) <- sum.(d) +. p) pmf
  done;
  let derived = Array.map (fun s -> s /. 3.0) sum in
  let ideal = Heuristic.ideal_distribution ~n () in
  let err, _ = Gof.max_abs_error ~empirical:derived ~model:ideal in
  (* Paper: "almost as good" as the proportional strategy. *)
  Alcotest.(check bool) (Printf.sprintf "oldest max error %.4f" err) true (err < 0.07)

let sequential_arrival_works () =
  let net = build ~arrival:Heuristic.Sequential ~n:512 ~links:6 40 in
  Alcotest.(check int) "size" 512 (Network.size net);
  let r = Rng.of_int 41 in
  for _ = 1 to 100 do
    let src = Rng.int r 512 and dst = Rng.int r 512 in
    Alcotest.(check bool) "routable" true (Route.delivered (Route.route net ~src ~dst))
  done

let total_variation_reasonable () =
  let n = 2048 and links = 11 in
  let derived = averaged_distribution n links 3 50 in
  let ideal = Heuristic.ideal_distribution ~n () in
  let tv = Gof.total_variation ~empirical:derived ~model:ideal in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f" tv) true (tv < 0.25)

let exponent_two_heuristic_skews_short () =
  (* The construction generalises to other exponents; with exponent 2 the
     short lengths dominate far more heavily. *)
  let n = 1024 and links = 8 in
  let steep = Heuristic.build ~exponent:2.0 ~n ~links (Rng.of_int 70) in
  let flat = Heuristic.build ~exponent:1.0 ~n ~links (Rng.of_int 71) in
  let short_mass net =
    let pmf = Heuristic.length_distribution net in
    pmf.(1) +. pmf.(2) +. pmf.(3) +. pmf.(4)
  in
  let s = short_mass steep and f = short_mass flat in
  Alcotest.(check bool) (Printf.sprintf "exponent 2 head %.2f > exponent 1 head %.2f" s f) true
    (s > f +. 0.1)

let constructed_routes_about_as_fast_as_ideal () =
  let n = 4096 and links = 12 in
  let ideal_net = Network.build_ideal ~n ~links (Rng.of_int 60) in
  let constructed = build ~n ~links 61 in
  let mean net =
    let r = Rng.of_int 62 in
    let total = ref 0 in
    for _ = 1 to 300 do
      let src = Rng.int r n and dst = Rng.int r n in
      total := !total + Route.hops (Route.route net ~src ~dst)
    done;
    float_of_int !total /. 300.0
  in
  let mi = mean ideal_net and mc = mean constructed in
  Alcotest.(check bool)
    (Printf.sprintf "constructed %.2f within 2x of ideal %.2f" mc mi)
    true (mc < 2.0 *. mi)

(* ------------------------------------------------------------------ *)
(* Repair (Section 5 regeneration)                                     *)
(* ------------------------------------------------------------------ *)

let repair_restores_full_delivery () =
  (* Before repair, terminate-strategy searches fail under node failures;
     after repair, the survivors form a complete random graph again and
     every search succeeds. *)
  let n = 4096 and links = 12 in
  let net = Network.build_ideal ~n ~links (Rng.of_int 80) in
  let mask = Ftr_core.Failure.random_node_fraction (Rng.of_int 81) ~n ~fraction:0.4 in
  let alive = Ftr_graph.Bitset.get mask in
  let failures = Ftr_core.Failure.of_node_mask mask in
  let r = Rng.of_int 82 in
  let before_failed = ref 0 in
  for _ = 1 to 200 do
    let live () =
      let rec go () =
        let v = Rng.int r n in
        if alive v then v else go ()
      in
      go ()
    in
    let src = live () and dst = live () in
    if not (Route.delivered (Route.route ~failures net ~src ~dst)) then incr before_failed
  done;
  Alcotest.(check bool)
    (Printf.sprintf "failures before repair (%d/200)" !before_failed)
    true (!before_failed > 40);
  let repaired = Heuristic.repair ~alive net (Rng.of_int 83) in
  let m = Network.size repaired in
  Alcotest.(check int) "survivor count" (Ftr_graph.Bitset.count mask) m;
  for _ = 1 to 200 do
    let src = Rng.int r m and dst = Rng.int r m in
    Alcotest.(check bool) "all delivered after repair" true
      (Route.delivered (Route.route repaired ~src ~dst))
  done

let repair_keeps_surviving_links () =
  let n = 256 in
  let net = Network.build_ideal ~n ~links:4 (Rng.of_int 84) in
  (* Kill only one node. *)
  let victim = 100 in
  let alive v = v <> victim in
  let repaired = Heuristic.repair ~alive net (Rng.of_int 85) in
  Alcotest.(check int) "one fewer node" (n - 1) (Network.size repaired);
  (* Positions of survivors preserved. *)
  for i = 0 to Network.size repaired - 1 do
    Alcotest.(check bool) "victim gone" true (Network.position repaired i <> victim)
  done;
  (* Degree restored: every node has its full complement of links. *)
  for i = 0 to Network.size repaired - 1 do
    let expected = 4 + (if i = 0 || i = Network.size repaired - 1 then 1 else 2) in
    Alcotest.(check int) "degree" expected (Array.length (Network.neighbors repaired i))
  done

let repair_rejects_extinction () =
  let net = Network.build_ideal ~n:16 ~links:1 (Rng.of_int 86) in
  Alcotest.check_raises "everyone dead"
    (Invalid_argument "Heuristic.repair: fewer than two survivors") (fun () ->
      ignore (Heuristic.repair ~alive:(fun v -> v = 3) net (Rng.of_int 87)))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_constructed_degrees =
  QCheck.Test.make ~name:"heuristic keeps exactly links long links" ~count:20
    QCheck.(pair (int_range 16 128) (int_range 1 6))
    (fun (n, links) ->
      let net = Heuristic.build ~n ~links (Rng.of_int (n * links)) in
      let ok = ref true in
      for u = 0 to n - 1 do
        let expected = links + (if u = 0 || u = n - 1 then 1 else 2) in
        if Array.length (Network.neighbors net u) <> expected then ok := false
      done;
      !ok)

let prop_constructed_connected =
  QCheck.Test.make ~name:"heuristic networks strongly connected" ~count:15
    QCheck.(pair (int_range 8 96) (int_range 1 4))
    (fun (n, links) ->
      let net = Heuristic.build ~n ~links (Rng.of_int (n + links)) in
      Ftr_graph.Bfs.is_strongly_connected (Network.to_adjacency net))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "heuristic"
    [
      ( "structure",
        [
          quick "network shape" constructed_network_shape;
          quick "no self loops" constructed_network_no_self_loops;
          quick "connected" constructed_network_connected;
          quick "routable" constructed_network_routable;
          quick "deterministic by seed" deterministic_by_seed;
          quick "rejects bad parameters" rejects_bad_parameters;
        ] );
      ( "distribution",
        [
          quick "derived tracks ideal (fig 5a)" derived_tracks_ideal;
          quick "derived is a pmf" derived_distribution_is_pmf;
          quick "ideal is a pmf" ideal_distribution_is_pmf;
          quick "ideal head values" ideal_distribution_harmonic_head;
          quick "oldest-link strategy tracks too" oldest_strategy_also_tracks;
          quick "sequential arrival" sequential_arrival_works;
          quick "total variation bounded" total_variation_reasonable;
          quick "other exponents skew accordingly" exponent_two_heuristic_skews_short;
          quick "routes about as fast as ideal (fig 7 spirit)"
            constructed_routes_about_as_fast_as_ideal;
        ] );
      ( "repair",
        [
          quick "restores full delivery" repair_restores_full_delivery;
          quick "keeps surviving links" repair_keeps_surviving_links;
          quick "rejects extinction" repair_rejects_extinction;
        ] );
      ( "properties",
        List.map (fun p -> QCheck_alcotest.to_alcotest p)
          [ prop_constructed_degrees; prop_constructed_connected ] );
    ]
