(* D2 snapshot-unvalidated fixture. The protocol is matched by suffix
   pattern, so local stand-ins for Snapshot/Check/Route exercise the
   automaton without touching the real modules: a network loaded with
   ~validate:false must flow through a validator before it reaches a
   routing sink. *)

module Snapshot = struct
  let load ~validate path = ignore validate; String.length path
end

module Check = struct
  let snapshot net = ignore net
end

module Route = struct
  let route net = net + 1
end

(* Positive: unvalidated load flows straight into routing. *)
let bad path =
  let net = Snapshot.load ~validate:false path in
  Route.route net

(* Negative: validated before use. *)
let good path =
  let net = Snapshot.load ~validate:false path in
  Check.snapshot net;
  Route.route net

(* Negative: validation was never skipped. *)
let also_good path =
  let net = Snapshot.load ~validate:true path in
  Route.route net
