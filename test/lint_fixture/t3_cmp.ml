(* T3 fixtures: polymorphic [=] instantiated at a float-carrying record
   (positive — structural float comparison) versus an int-instantiated
   [=] (negative — immediate, safe). *)

type pt = { x : float; y : float }

let close (a : pt) (b : pt) = a = b

let same_int (a : int) (b : int) = a = b
