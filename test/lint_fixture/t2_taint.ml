(* T2 fixtures. [jitter] is a direct nondeterminism source — that much
   the syntactic R1 also sees, so T2 leaves it alone. [sample] is the
   typed stage's quarry: transitively nondeterministic through the call
   graph. [draw]/[sample_det] use the seeded generator and stay clean. *)

let jitter () = Random.int 1000

let sample x = x + jitter ()

let draw rng = Ftr_prng.Rng.int rng 10

let sample_det rng x = x + draw rng
