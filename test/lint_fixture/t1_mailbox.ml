(* T1 positive/negative pair for the service's mailbox seam. [drain_all]
   hands the pool workers a closure that drains a toplevel
   [Ftr_svc.Mailbox.t] — exactly the handoff the round scheduler performs
   — and must stay quiet: the mailbox is a sanctioned seam (posts and
   drains are sequenced by the round barrier, docs/SERVICE.md). The
   [Queue.t] twin right next to it is the same shape with an unsanctioned
   container and must still fire. *)

let mailbox : int Ftr_svc.Mailbox.t = Ftr_svc.Mailbox.create ~owner:0 ()

let drain_one i =
  ignore (Ftr_svc.Mailbox.take_due mailbox ~now:i);
  i

let drain_all n = Ftr_exec.Pool.map ~count:n drain_one

let queue : int Queue.t = Queue.create ()

let pop_one i =
  ignore (Queue.take_opt queue);
  i

let pop_all n = Ftr_exec.Pool.map ~count:n pop_one
