(* ftr-lint: hot -- fixture: opts this module into T4's int32 check *)

(* T4 int32 fixtures: a hot loop reading an int32 Bigarray into a
   binding — the box outlives the read and is a per-iteration
   allocation — (positive), and the same loop with the read directly
   wrapped in [Int32.to_int], the Adjacency.I32 accessor pattern whose
   box/unbox pair cmmgen cancels (negative). *)

type vec = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

let sum_boxed (a : vec) n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    let v = Bigarray.Array1.unsafe_get a i in
    acc := !acc + Int32.to_int v
  done;
  !acc

let sum_unboxed (a : vec) n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + Int32.to_int (Bigarray.Array1.unsafe_get a i)
  done;
  !acc

(* T3 on the Bigarray path: polymorphic [=] at an abstract Bigarray
   type compares custom blocks — use Adjacency.I32.equal / Csr.equal. *)
let vecs_equal (a : vec) (b : vec) = a = b
