(* D2 route-scratch fixture: [leaky] borrows and forgets to restore on
   the error path (one positive finding); [clean] is the lib/core/route.ml
   idiom — borrow once, route under Fun.protect, restore in [finally] —
   and must stay silent. *)

type scratch = { mutable epoch : int }
type borrowed = { bs : scratch; bs_home : scratch option ref option }

let cell : scratch option ref = ref None

let borrow_scratch () =
  match !cell with
  | Some s ->
      cell := None;
      { bs = s; bs_home = Some cell }
  | None -> { bs = { epoch = 0 }; bs_home = Some cell }

let restore_scratch b = match b.bs_home with Some c -> c := Some b.bs | None -> ()

(* Positive: the [n < 0] branch raises after the borrow with no restore
   and no Fun.protect, so the scratch leaks on that path. *)
let leaky n =
  let b = borrow_scratch () in
  if n < 0 then invalid_arg "leaky";
  b.bs.epoch <- b.bs.epoch + 1;
  let r = b.bs.epoch in
  if n > 10 then r
  else begin
    restore_scratch b;
    r
  end

(* Negative: restore runs on every path, exceptions included. *)
let clean n =
  let b = borrow_scratch () in
  Fun.protect ~finally:(fun () -> restore_scratch b) @@ fun () ->
  if n < 0 then invalid_arg "clean";
  b.bs.epoch <- b.bs.epoch + 1;
  b.bs.epoch
