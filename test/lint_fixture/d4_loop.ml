(* D4 loop-invariant flag reload fixture. The module opts into the hot
   profile below, so the invariant re-read in [spin] is flagged (one
   positive) while [spin_dirty]'s loop body toggles the flag and stays
   silent. ftr-lint: hot fixture exercises the hot-loop rules *)

(* Positive: Flag.enabled re-read every iteration, body never writes it. *)
let spin n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    if Ftr_obs.Flag.enabled () then acc := !acc + i
  done;
  !acc

(* Negative: with_mode in the body makes the flag loop-variant. *)
let spin_dirty n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    Ftr_obs.Flag.with_mode false (fun () -> acc := !acc + i);
    if Ftr_obs.Flag.enabled () then incr acc
  done;
  !acc
