(* T1-negative: the same shape as t1_race.ml, but the shared state is an
   [Atomic.t] — the sanctioned seam — so the typed stage stays quiet. *)

let counter = Atomic.make 0

let bump () = Atomic.incr counter

let job i =
  bump ();
  i

let run n = Ftr_exec.Pool.map ~count:n job
