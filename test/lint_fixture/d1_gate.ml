(* D1 gate-dominance fixture. [bad] and [half] each carry one telemetry
   write that some path from function entry reaches without passing a
   Flag.enabled check (two positive findings); [good] and [traced] are
   fully dominated, including the lib/core/route.ml idiom of a gate
   variable captured by a helper closure, and must stay silent. *)

(* Positive: no gate anywhere. *)
let bad () = Ftr_obs.Metrics.incr "lint_fixture_bad"

(* Positive: the first write is gated, the second sits after the join
   where the gate no longer dominates. *)
let half c =
  if Ftr_obs.Flag.enabled () then Ftr_obs.Metrics.incr "half_gated";
  if c then Ftr_obs.Metrics.incr "half_ungated"

(* Negative: classic gate. *)
let good () = if Ftr_obs.Flag.enabled () then Ftr_obs.Events.emit ~kind:"fixture" []

(* Negative: gate variable conjoining both gate families, captured by a
   helper closure defined under no branch — the closure inherits the
   gate through its own body's check, as route.ml's [record_excluded]
   does. *)
let traced () =
  let tr = Ftr_obs.Tracing.null in
  let live = Ftr_obs.Flag.enabled () && Ftr_obs.Tracing.is_live tr in
  let record n = if live then Ftr_obs.Tracing.hop tr ~node:n in
  if live then begin
    Ftr_obs.Tracing.set_context tr ~nodes:"all" ~links:"all" ~strategy:"fixture";
    record 1
  end;
  record 2
