(* T1-positive: a genuine cross-function domain race. [run] hands [job]
   to the worker pool; [job] calls [bump]; [bump] mutates the toplevel
   [tally] table with no Atomic/Mutex/DLS seam anywhere on the path. No
   single line here is suspicious to the syntactic rules R1-R5 — only
   the call-graph analysis connects the pool boundary to the mutation. *)

let tally : (int, int) Hashtbl.t = Hashtbl.create 16

let bump i =
  let n = match Hashtbl.find_opt tally i with Some n -> n | None -> 0 in
  Hashtbl.replace tally i (n + 1)

let job i =
  bump (i mod 4);
  i

let run n = Ftr_exec.Pool.map ~count:n job
