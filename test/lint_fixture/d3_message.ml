(* D3 message-protocol fixture. The local [Message] module mirrors
   lib/svc: [Query] is declared but never headed explicitly in any
   dispatch while a catch-all arm exists, so D3a flags its declaration
   (one positive); [Ping]/[Pong] are headed and stay silent. [raw_push]
   mutates envelope-carrying storage outside Mailbox (one D3b positive);
   [ok_queue] mutates an envelope-free queue and stays silent. *)

module Message = struct
  type payload = Ping | Pong of int | Query of string
  type envelope = { seq : int; body : payload }
end

(* Dispatch with a catch-all: [Query] would be swallowed silently. *)
let dispatch (p : Message.payload) =
  match p with Message.Ping -> 0 | Message.Pong n -> n | _ -> -1

(* Positive (D3b): raw mutation of an envelope queue. *)
let raw_push (q : Message.envelope Queue.t) (e : Message.envelope) = Queue.add e q

(* Negative (D3b): no envelope anywhere in the mutated type. *)
let ok_queue (q : int Queue.t) n = Queue.add n q
