(* ftr-lint: hot -- fixture: opts this module into T4 *)

(* T4 fixtures: a tuple allocated inside a [while] loop of a hot module
   (positive) and an allocation-free accumulation loop (negative). *)

let sum_pairs n =
  let acc = ref 0 in
  let i = ref 0 in
  while !i < n do
    let pair = (!i, !i + 1) in
    acc := !acc + fst pair + snd pair;
    incr i
  done;
  !acc

let sum n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + i
  done;
  !acc
