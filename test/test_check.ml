(* ftr-lint: disable-file R2 T3 test assertions compare small concrete values; the comparator rules target runtime code *)
(* The sanitizer must stay quiet on healthy structures and loud on broken
   ones. Healthy halves are qcheck properties over the real builders and
   router; the loud halves inject specific corruptions — a missing ring
   link, an overshooting one-sided hop, a heap whose order flipped — and
   assert the report names the culprit node/hop. *)

module Network = Ftr_core.Network
module Route = Ftr_core.Route
module Failure = Ftr_core.Failure
module Serial = Ftr_core.Serial
module Rng = Ftr_prng.Rng
module Heap = Ftr_sim.Heap
module Engine = Ftr_sim.Engine
module Overlay = Ftr_p2p.Overlay
module Check = Ftr_check.Check

let pp_first vs =
  match vs with
  | [] -> "no violations"
  | v :: _ -> Format.asprintf "%a" Check.pp_violation v

let expect_clean label vs =
  if vs <> [] then
    Alcotest.failf "%s: %d unexpected violation(s); first: %s" label (List.length vs)
      (pp_first vs)

let find_code code vs = List.find_opt (fun (v : Check.violation) -> v.Check.code = code) vs

let expect_code label code vs =
  match find_code code vs with
  | Some v -> v
  | None ->
      Alcotest.failf "%s: expected a %s violation, got %d other(s); first: %s" label code
        (List.length vs) (pp_first vs)

(* Corruption constructors must not trip the in-path FTR_CHECK hooks when
   the suite runs with the flag exported; build them with the mode off. *)
let quietly f = Check.with_mode false f

(* A clean line network where every node links only to its ring
   neighbours, with one optional extra directed link. *)
let line_net ?broken_at ?extra n =
  let neighbors =
    Array.init n (fun i ->
        let ring =
          (if i > 0 then [ i - 1 ] else []) @ if i < n - 1 then [ i + 1 ] else []
        in
        let ring =
          match broken_at with
          | Some (src, dst) when src = i -> List.filter (fun j -> j <> dst) ring
          | _ -> ring
        in
        let ring =
          match extra with Some (src, dst) when src = i -> dst :: ring | _ -> ring
        in
        let arr = Array.of_list ring in
        Array.sort compare arr;
        arr)
  in
  Network.of_neighbor_indices ~line_size:n
    ~positions:(Array.init n (fun i -> i))
    ~neighbors ~links:0 ()

(* ------------------------------------------------------------------ *)
(* Injected corruptions                                                *)
(* ------------------------------------------------------------------ *)

let broken_ring_detected () =
  (* Node 5 forgets its short link to node 6. *)
  let net = quietly (fun () -> line_net ~broken_at:(5, 6) 8) in
  let v = expect_code "broken ring" "net.ring-broken" (Check.network net) in
  Alcotest.(check string) "names the culprit node" "node 5" v.Check.subject

let overshoot_detected () =
  (* Node 2 holds a long link to 7; hopping 2->7 toward target 5 passes
     the target, which one-sided routing must never do. *)
  let net = quietly (fun () -> line_net ~extra:(2, 7) 10) in
  let path = [ 2; 7 ] in
  let outcome = Route.Failed { hops = 1; stuck_at = 7; reason = Route.No_live_neighbor } in
  let vs = Check.trace ~side:Route.One_sided net ~src:2 ~dst:5 ~outcome ~path in
  let v = expect_code "overshoot" "trace.overshoot" vs in
  Alcotest.(check string) "names the culprit hop" "hop 1 (2->7)" v.Check.subject

let heap_order_detected () =
  (* Flip the comparison under the heap's feet: the layout built under the
     old order is (with overwhelming probability) not a heap under the new
     one, exactly what a buggy sift would produce. *)
  let flipped = ref false in
  let h =
    Heap.create ~compare:(fun (a : int) b -> if !flipped then compare b a else compare a b)
  in
  for i = 1 to 32 do
    Heap.push h i
  done;
  expect_clean "healthy heap" (Check.heap h);
  flipped := true;
  let v = expect_code "flipped heap" "heap.order" (Check.heap h) in
  Alcotest.(check bool) "names a slot" true
    (String.length v.Check.subject > 0
    && String.sub v.Check.subject 0 (min 9 (String.length v.Check.subject)) = "heap slot")

let hop_count_mismatch_detected () =
  let net = quietly (fun () -> line_net 6) in
  let outcome = Route.Delivered { hops = 3 } in
  let vs = Check.trace net ~src:0 ~dst:1 ~outcome ~path:[ 0; 1 ] in
  ignore (expect_code "hop accounting" "trace.hop-count" vs)

let crash_breaks_strict_ring () =
  (* An unrepaired crash leaves the neighbours pointing at the dead node:
     the quiescent-ring check must notice the basin is stale. *)
  let engine = Engine.create () in
  let rng = Rng.of_int 11 in
  let ov = Overlay.create ~line_size:64 ~links:2 ~rng engine in
  Overlay.populate ov ~positions:[ 4; 12; 20; 28; 36; 44 ];
  expect_clean "fresh overlay" (Check.overlay ~strict_ring:true ov);
  Overlay.crash ov ~pos:20;
  ignore (expect_code "stale ring" "overlay.basin" (Check.overlay ~strict_ring:true ov))

(* ------------------------------------------------------------------ *)
(* Healthy structures stay quiet (properties)                          *)
(* ------------------------------------------------------------------ *)

let prop_ideal_networks_pass =
  QCheck.Test.make ~name:"random ideal networks pass Check.network" ~count:40
    QCheck.(triple (int_range 2 256) (int_range 0 6) small_int)
    (fun (n, links, seed) ->
      let net = Network.build_ideal ~n ~links (Rng.of_int seed) in
      Check.network ~expected_links:links net = [])

let prop_ring_networks_pass =
  QCheck.Test.make ~name:"random ring networks pass Check.network" ~count:40
    QCheck.(triple (int_range 3 256) (int_range 0 6) small_int)
    (fun (n, links, seed) ->
      let net = Network.build_ring ~n ~links (Rng.of_int seed) in
      Check.network net = [])

let prop_routes_pass =
  QCheck.Test.make ~name:"random routes pass Check.trace" ~count:60
    QCheck.(triple (int_range 8 256) (int_range 0 5) small_int)
    (fun (n, links, seed) ->
      let rng = Rng.of_int seed in
      let net = Network.build_ideal ~n ~links rng in
      let src = Rng.int rng n and dst = Rng.int rng n in
      let side = if seed mod 2 = 0 then Route.Two_sided else Route.One_sided in
      let _, vs = Check.route_and_check ~side ~rng net ~src ~dst in
      vs = [])

let prop_backtrack_routes_pass =
  QCheck.Test.make ~name:"backtracking under failures passes Check.trace" ~count:40
    QCheck.(pair (int_range 32 256) small_int)
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      let net = Network.build_ideal ~n ~links:3 rng in
      let mask = Failure.random_node_fraction rng ~n ~fraction:0.2 in
      let failures = Failure.of_node_mask mask in
      let src = Rng.int rng n and dst = Rng.int rng n in
      if Failure.node_alive failures src && Failure.node_alive failures dst then begin
        let _, vs =
          Check.route_and_check ~failures ~strategy:(Route.Backtrack { history = 4 }) ~rng net
            ~src ~dst
        in
        vs = []
      end
      else QCheck.assume_fail ())

let prop_heap_stays_wellformed =
  QCheck.Test.make ~name:"random push/pop sequences keep the heap well-formed" ~count:80
    QCheck.(pair (list_of_size Gen.(int_range 1 64) int) (int_range 0 32))
    (fun (xs, pops) ->
      let h = Heap.create ~compare:(fun (a : int) b -> compare a b) in
      List.iter (Heap.push h) xs;
      for _ = 1 to pops do
        ignore (Heap.pop h)
      done;
      Check.heap h = [])

let prop_serial_roundtrip_preserves_invariants =
  QCheck.Test.make ~name:"Serial roundtrip preserves networks and their invariants" ~count:40
    QCheck.(triple (int_range 2 128) (int_range 0 5) small_int)
    (fun (n, links, seed) ->
      let net = Network.build_ideal ~n ~links (Rng.of_int seed) in
      let restored = Serial.of_string (Serial.to_string net) in
      let same = ref (Network.size net = Network.size restored) in
      same := !same && Network.line_size net = Network.line_size restored;
      same := !same && Network.links net = Network.links restored;
      same := !same && Network.geometry net = Network.geometry restored;
      for i = 0 to Network.size net - 1 do
        same := !same && Network.position net i = Network.position restored i;
        same := !same && Network.neighbors net i = Network.neighbors restored i
      done;
      !same && Check.network ~expected_links:links restored = [])

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "check"
    [
      ( "corruptions",
        [
          quick "a broken ring link is flagged with its node" broken_ring_detected;
          quick "an overshooting one-sided hop is flagged with its hop" overshoot_detected;
          quick "a heap order violation is flagged with its slot" heap_order_detected;
          quick "hop accounting mismatches are flagged" hop_count_mismatch_detected;
          quick "an unrepaired crash breaks the strict ring" crash_breaks_strict_ring;
        ] );
      ( "properties",
        List.map
          (fun p -> QCheck_alcotest.to_alcotest p)
          [
            prop_ideal_networks_pass;
            prop_ring_networks_pass;
            prop_routes_pass;
            prop_backtrack_routes_pass;
            prop_heap_stays_wellformed;
            prop_serial_roundtrip_preserves_invariants;
          ] );
    ]
