(* Typed-stage (T1-T4) analyzer tests. Unlike the syntactic stage, the
   typed rules need real .cmt files, so the fixtures are a compiled
   mini-library under test/lint_fixture/ — one positive and one negative
   module per rule — analyzed exactly as `dune build @lint-typed`
   analyzes the real tree. The suite also unit-tests the call graph,
   checks the baseline's typed namespace, exercises stage-selective
   baseline regeneration (--update-baseline), and self-applies the typed
   stage to the committed tree, which must be clean modulo the typed
   entries of lint.baseline. *)

module Finding = Ftr_lint.Finding
module Driver = Ftr_lint.Driver
module Baseline = Ftr_lint.Baseline
module Callgraph = Ftr_lint.Callgraph
module Typed_rules = Ftr_lint.Typed_rules
module Typed_driver = Ftr_lint.Typed_driver

let contains s sub = Option.is_some (Ftr_lint.Suppress.find_sub s sub)

(* Tests run from _build/default/test; walk up to the build context root
   (the nearest ancestor holding dune-project), next to which the
   fixture library's and the real tree's .objs directories sit. *)
let root =
  lazy
    (let rec up d =
       if Sys.file_exists (Filename.concat d "dune-project") then d
       else
         let parent = Filename.dirname d in
         if String.equal parent d then
           Alcotest.fail "no dune-project above the test's working directory"
         else up parent
     in
     up (Sys.getcwd ()))

(* The fixture corpus is analyzed once; each rule test filters the
   shared finding stream by file. *)
let fixture = lazy (Typed_driver.analyze ~root:(Lazy.force root) ~dirs:[ "test/lint_fixture" ])

let fixture_findings file =
  let _, kept = Lazy.force fixture in
  List.filter (fun ((f : Finding.t), _) -> String.equal (Filename.basename f.file) file) kept

let rules_of file =
  List.map (fun ((f : Finding.t), _) -> Finding.rule_id f.rule) (fixture_findings file)

let test_corpus () =
  let state, _ = Lazy.force fixture in
  Alcotest.(check int)
    "all twelve fixture units loaded (seven typed, five flow)" 12
    (Array.length state.Typed_rules.units)

(* T1: the cross-function race (run -> pool boundary -> job -> bump ->
   tally) fires, and — the acceptance criterion for the typed stage —
   the very same file is invisible to the syntactic rules. *)

let test_t1 () =
  (match fixture_findings "t1_race.ml" with
  | [] -> Alcotest.fail "expected T1 findings on t1_race.ml"
  | fs ->
      List.iter
        (fun ((f : Finding.t), _) ->
          Alcotest.(check string) "rule is T1" "T1" (Finding.rule_id f.rule);
          Alcotest.(check bool) "names the shared global" true (contains f.message "tally");
          Alcotest.(check bool) "witness chain passes through bump" true
            (contains f.message "bump"))
        fs);
  Alcotest.(check (list string)) "atomic counter variant is clean" [] (rules_of "t1_clean.ml")

(* The service's mailbox seam: draining a toplevel [Ftr_svc.Mailbox.t]
   from pool workers is sanctioned (the round barrier sequences posts
   and drains), while the structurally identical [Queue.t] handoff in
   the same file must still fire. *)
let test_t1_mailbox_seam () =
  (match fixture_findings "t1_mailbox.ml" with
  | [] -> Alcotest.fail "expected a T1 finding on the Queue.t twin in t1_mailbox.ml"
  | fs ->
      List.iter
        (fun ((f : Finding.t), _) ->
          Alcotest.(check string) "rule is T1" "T1" (Finding.rule_id f.rule);
          Alcotest.(check bool) "names the queue, not the mailbox" true
            (contains f.message "queue" && not (contains f.message "T1_mailbox.mailbox")))
        fs)

let test_t1_invisible_to_syntactic () =
  let path = Filename.concat (Lazy.force root) "test/lint_fixture/t1_race.ml" in
  Alcotest.(check (list string))
    "R1-R5 see nothing in the race fixture" []
    (List.map (fun ((f : Finding.t), _) -> Finding.rule_id f.rule) (Driver.lint_file path))

(* T2: the transitively tainted [sample] is flagged; the direct source
   [jitter] is R1's job, and the seeded-generator path stays clean. *)

let test_t2 () =
  match fixture_findings "t2_taint.ml" with
  | [ (f, _) ] ->
      Alcotest.(check string) "rule is T2" "T2" (Finding.rule_id f.rule);
      Alcotest.(check bool) "flags sample, not the direct source" true
        (contains f.message "sample");
      Alcotest.(check bool) "chain reaches the Random call" true (contains f.message "Random")
  | fs -> Alcotest.failf "expected exactly one T2 finding, got %d" (List.length fs)

(* T3: poly [=] at a float-carrying record fires; at int it does not. *)

let test_t3 () =
  match fixture_findings "t3_cmp.ml" with
  | [ (f, _) ] ->
      Alcotest.(check string) "rule is T3" "T3" (Finding.rule_id f.rule);
      Alcotest.(check bool) "blames the float payload" true (contains f.message "float")
  | fs -> Alcotest.failf "expected exactly one T3 finding, got %d" (List.length fs)

(* T4: a tuple allocated in a loop of a hot module fires; the
   allocation-free loop next to it does not. *)

let test_t4 () =
  match fixture_findings "t4_hot.ml" with
  | [ (f, _) ] ->
      Alcotest.(check string) "rule is T4" "T4" (Finding.rule_id f.rule);
      Alcotest.(check bool) "names the tuple allocation" true (contains f.message "tuple")
  | fs -> Alcotest.failf "expected exactly one T4 finding, got %d" (List.length fs)

(* The Bigarray seams: a bare int32 Bigarray read in a hot loop boxes
   its result and fires T4; the directly-wrapped [Int32.to_int (...)]
   read next to it — the Adjacency.I32 accessor pattern — does not.
   Polymorphic [=] at the abstract Bigarray type fires T3. *)

let test_t4_int32 () =
  let t4 =
    List.filter
      (fun ((f : Finding.t), _) -> String.equal (Finding.rule_id f.rule) "T4")
      (fixture_findings "t4_int32.ml")
  in
  match t4 with
  | [ (f, _) ] ->
      Alcotest.(check bool) "names the int32 box" true (contains f.message "boxed int32");
      Alcotest.(check bool) "points at the accessor idiom" true
        (contains f.message "Int32.to_int")
  | fs -> Alcotest.failf "expected exactly one T4 finding, got %d" (List.length fs)

let test_t3_bigarray () =
  let t3 =
    List.filter
      (fun ((f : Finding.t), _) -> String.equal (Finding.rule_id f.rule) "T3")
      (fixture_findings "t4_int32.ml")
  in
  match t3 with
  | [ (f, _) ] ->
      Alcotest.(check bool) "blames the Bigarray type" true (contains f.message "Bigarray")
  | fs -> Alcotest.failf "expected exactly one T3 finding, got %d" (List.length fs)

(* Call graph: gated edges, forward/reverse BFS and witness chains. *)

let test_callgraph () =
  let g = Callgraph.create () in
  let n name line = Callgraph.add_node g ~name ~file:"f.ml" ~line ~col:0 in
  let a = n "A" 1 and b = n "B" 2 and c = n "C" 3 and d = n "D" 4 in
  Callgraph.add_edge g a b;
  Callgraph.add_edge g ~gated:true b c;
  Callgraph.add_edge g b d;
  Alcotest.(check int) "node count" 4 (Callgraph.node_count g);
  let visited = Callgraph.reachable g ~through_gated:false [ a ] in
  Alcotest.(check bool) "ungated path A->B->D crossed" true visited.(d);
  Alcotest.(check bool) "gated edge B->C refused" false visited.(c);
  let visited, parent = Callgraph.bfs g ~through_gated:true [ a ] in
  Alcotest.(check bool) "gated edge crossed when allowed" true visited.(c);
  Alcotest.(check (list string)) "witness chain" [ "A"; "B"; "C" ] (Callgraph.chain g parent c);
  let rvisited = Callgraph.reachable g ~reverse:true [ c ] in
  Alcotest.(check bool) "reverse BFS reaches the caller" true rvisited.(a);
  Alcotest.(check bool) "reverse BFS skips the sibling" false rvisited.(d)

(* Baseline: typed findings round-trip under the `typed:` rule
   namespace and absorb like syntactic ones. *)

let test_typed_baseline () =
  let kept = fixture_findings "t1_race.ml" @ fixture_findings "t3_cmp.ml" in
  let entries = List.map (fun (f, line) -> Baseline.entry_of_finding ~source_line:line f) kept in
  let path = Filename.temp_file "ftr_lint_typed" ".baseline" in
  Baseline.save path entries;
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let reloaded = Baseline.load path in
  Sys.remove path;
  Alcotest.(check bool) "entries saved under the typed namespace" true (contains text "typed:T1");
  Alcotest.(check int) "round-trip preserves entries" (List.length entries)
    (List.length reloaded);
  List.iter
    (fun e ->
      Alcotest.(check string) "entry stage is typed" "typed"
        (Finding.stage_id (Baseline.entry_stage e)))
    reloaded;
  let fresh, baselined, stale = Baseline.apply reloaded kept in
  Alcotest.(check int) "all findings absorbed" 0 (List.length fresh);
  Alcotest.(check int) "all entries used" (List.length entries) baselined;
  Alcotest.(check int) "nothing stale" 0 stale

(* --update-baseline is stage-selective: regenerating the typed stage
   rewrites typed entries (to none — the tree is clean) and carries
   entries of the other stage over untouched. *)

let test_update_baseline () =
  let cwd = Sys.getcwd () in
  Fun.protect ~finally:(fun () -> Sys.chdir cwd) @@ fun () ->
  Sys.chdir (Lazy.force root);
  let fake rule file = ({ Finding.file; line = 1; col = 0; rule; message = "m" }, "let x = 1") in
  let entry (f, l) = Baseline.entry_of_finding ~source_line:l f in
  let path = Filename.temp_file "ftr_lint_regen" ".baseline" in
  Baseline.save path [ entry (fake Finding.R1 "lib/a.ml"); entry (fake Finding.T1 "lib/b.ml") ];
  let code =
    Driver.run ~write_baseline:path ~quiet:true ~stages:[ Finding.Typed ]
      ~dirs:[ "lib"; "bin"; "bench" ] ()
  in
  let reloaded = Baseline.load path in
  Sys.remove path;
  Alcotest.(check int) "regeneration exits 0" 0 code;
  match reloaded with
  | [ e ] ->
      Alcotest.(check string) "stale typed entry dropped, syntactic entry kept" "syntactic"
        (Finding.stage_id (Baseline.entry_stage e))
  | es -> Alcotest.failf "expected exactly the carried-over entry, got %d" (List.length es)

(* Self-application: the typed stage over the real tree is clean modulo
   the typed entries of the committed baseline. *)

let test_self_application () =
  let root = Lazy.force root in
  let state, findings = Typed_driver.analyze ~root ~dirs:[ "lib"; "bin"; "bench" ] in
  Alcotest.(check bool) "a real corpus loaded" true (Array.length state.Typed_rules.units >= 40);
  let entries =
    List.filter
      (fun e -> match Baseline.entry_stage e with Finding.Typed -> true | _ -> false)
      (Baseline.load (Filename.concat root "lint.baseline"))
  in
  let fresh, _, stale = Baseline.apply entries findings in
  Alcotest.(check (list string))
    "no non-baselined typed findings in the tree" []
    (List.map (fun (f, _) -> Finding.to_string f) fresh);
  Alcotest.(check int) "no stale typed baseline entries" 0 stale

let () =
  Alcotest.run "lint_typed"
    [
      ( "rules",
        [
          Alcotest.test_case "fixture corpus loads" `Quick test_corpus;
          Alcotest.test_case "T1 domain-race" `Quick test_t1;
          Alcotest.test_case "T1 race invisible to R1-R5" `Quick test_t1_invisible_to_syntactic;
          Alcotest.test_case "T1 mailbox seam sanctioned" `Quick test_t1_mailbox_seam;
          Alcotest.test_case "T2 nondeterminism-taint" `Quick test_t2;
          Alcotest.test_case "T3 typed-polymorphic-comparison" `Quick test_t3;
          Alcotest.test_case "T4 typed-hot-path-allocation" `Quick test_t4;
          Alcotest.test_case "T4 boxed int32 in a hot loop" `Quick test_t4_int32;
          Alcotest.test_case "T3 polymorphic compare at a Bigarray" `Quick test_t3_bigarray;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "callgraph BFS and gating" `Quick test_callgraph;
          Alcotest.test_case "typed baseline namespace" `Quick test_typed_baseline;
          Alcotest.test_case "stage-selective --update-baseline" `Quick test_update_baseline;
        ] );
      ("self", [ Alcotest.test_case "typed stage clean on the tree" `Quick test_self_application ]);
    ]
