(* ftr-lint: disable-file R2 test assertions compare small concrete values *)
module Keyspace = Ftr_dht.Keyspace
module Store = Ftr_dht.Store
module Dynamic = Ftr_dht.Dynamic
module Network = Ftr_core.Network
module Failure = Ftr_core.Failure
module Route = Ftr_core.Route
module Overlay = Ftr_p2p.Overlay
module Engine = Ftr_sim.Engine
module Rng = Ftr_prng.Rng
module Bitset = Ftr_graph.Bitset

(* ------------------------------------------------------------------ *)
(* Keyspace                                                            *)
(* ------------------------------------------------------------------ *)

let keyspace_deterministic () =
  Alcotest.(check int64) "fnv stable" (Keyspace.fnv1a64 "hello") (Keyspace.fnv1a64 "hello");
  Alcotest.(check int) "point stable" (Keyspace.point ~line_size:1000 "hello")
    (Keyspace.point ~line_size:1000 "hello")

let keyspace_fnv_known_vectors () =
  (* Published FNV-1a 64 test vectors. *)
  Alcotest.(check int64) "empty" 0xCBF29CE484222325L (Keyspace.fnv1a64 "");
  Alcotest.(check int64) "'a'" 0xAF63DC4C8601EC8CL (Keyspace.fnv1a64 "a")

let keyspace_points_in_range () =
  for i = 0 to 999 do
    let p = Keyspace.point ~line_size:321 (string_of_int i) in
    Alcotest.(check bool) "in range" true (p >= 0 && p < 321)
  done

let keyspace_spreads_evenly () =
  (* Chi-square over 16 cells with 16000 keys; 99.9% quantile of chi2(15)
     is 37.7. *)
  let cells = Array.make 16 0 in
  let keys = 16_000 in
  for i = 0 to keys - 1 do
    let p = Keyspace.point ~line_size:16 (Printf.sprintf "key-%d" i) in
    cells.(p) <- cells.(p) + 1
  done;
  let expected = Array.make 16 (float_of_int keys /. 16.0) in
  let chi2 = Ftr_stats.Gof.chi_square ~observed:cells ~expected in
  Alcotest.(check bool) (Printf.sprintf "chi2 %.1f < 45" chi2) true (chi2 < 45.0)

let keyspace_salts_independent () =
  (* Replica points of the same key should look unrelated. *)
  let same = ref 0 in
  for i = 0 to 499 do
    let key = Printf.sprintf "k%d" i in
    let p0 = Keyspace.replica_point ~line_size:4096 ~salt:0 key in
    let p1 = Keyspace.replica_point ~line_size:4096 ~salt:1 key in
    if abs (p0 - p1) < 41 then incr same
  done;
  (* Pr[|p0-p1| < 41] ~ 2%, so over 500 keys expect ~10, allow slack. *)
  Alcotest.(check bool) (Printf.sprintf "%d nearby pairs" !same) true (!same < 30)

let keyspace_avalanche () =
  (* Flipping one character of the key should flip about half the bits of
     the 64-bit hash. *)
  let popcount v =
    let c = ref 0 in
    for b = 0 to 63 do
      if Int64.logand (Int64.shift_right_logical v b) 1L = 1L then incr c
    done;
    !c
  in
  let s = Ftr_stats.Summary.create () in
  for i = 0 to 499 do
    let key = Printf.sprintf "avalanche-%d" i in
    let mutated = Printf.sprintf "avalanchf-%d" i in
    let flipped = popcount (Int64.logxor (Keyspace.hash64 key) (Keyspace.hash64 mutated)) in
    Ftr_stats.Summary.add_int s flipped
  done;
  Alcotest.(check bool)
    (Printf.sprintf "mean flipped bits %.1f near 32" (Ftr_stats.Summary.mean s))
    true
    (abs_float (Ftr_stats.Summary.mean s -. 32.0) < 2.0)

let keyspace_salt_zero_is_point () =
  Alcotest.(check int) "salt 0" (Keyspace.point ~line_size:999 "abc")
    (Keyspace.replica_point ~line_size:999 ~salt:0 "abc")

(* ------------------------------------------------------------------ *)
(* Static store                                                        *)
(* ------------------------------------------------------------------ *)

let make_store ?(n = 1024) ?(links = 8) ?(replicas = 1) seed =
  Store.create ~replicas (Network.build_ideal ~n ~links (Rng.of_int seed))

let store_put_get_roundtrip () =
  let store = make_store 1 in
  for i = 0 to 199 do
    Store.put store ~key:(Printf.sprintf "k%d" i) ~value:(Printf.sprintf "v%d" i)
  done;
  for i = 0 to 199 do
    Alcotest.(check (option string)) "roundtrip"
      (Some (Printf.sprintf "v%d" i))
      (Store.get store ~key:(Printf.sprintf "k%d" i))
  done

let store_missing_key () =
  let store = make_store 2 in
  Alcotest.(check (option string)) "missing" None (Store.get store ~key:"nope")

let store_overwrite () =
  let store = make_store 3 in
  Store.put store ~key:"k" ~value:"v1";
  Store.put store ~key:"k" ~value:"v2";
  Alcotest.(check (option string)) "overwritten" (Some "v2") (Store.get store ~key:"k")

let store_remove () =
  let store = make_store 4 in
  Store.put store ~key:"k" ~value:"v";
  Store.remove store ~key:"k";
  Alcotest.(check (option string)) "removed" None (Store.get store ~key:"k");
  Alcotest.(check int) "empty" 0 (Store.stored_pairs store)

let store_owner_is_nearest () =
  let store = make_store 5 in
  let net = Store.network store in
  let key = "some-key" in
  let point = Keyspace.point ~line_size:(Network.line_size net) key in
  Alcotest.(check int) "owner" (Network.nearest_index net ~position:point)
    (Store.owner store key)

let store_replica_count () =
  let store = make_store ~replicas:3 6 in
  Store.put store ~key:"k" ~value:"v";
  let owners = Store.replica_owners store "k" in
  Alcotest.(check bool) "replicas distinct" true (List.length owners >= 2);
  Alcotest.(check int) "stored at each owner" (List.length owners) (Store.stored_pairs store);
  List.iter
    (fun o -> Alcotest.(check bool) "key present" true (List.mem "k" (Store.keys_at store o)))
    owners

let store_load_balanced () =
  (* With an even hash, no node should hold vastly more than its share. *)
  let n = 256 in
  let store = Store.create (Network.build_ideal ~n ~links:4 (Rng.of_int 7)) in
  let keys = 25_600 in
  for i = 0 to keys - 1 do
    Store.put store ~key:(Printf.sprintf "key-%d" i) ~value:"x"
  done;
  let worst = ref 0 in
  for node = 0 to n - 1 do
    let load = List.length (Store.keys_at store node) in
    if load > !worst then worst := load
  done;
  (* Mean load is 100; the max of 256 Poisson(100) draws is ~140. *)
  Alcotest.(check bool) (Printf.sprintf "worst load %d" !worst) true (!worst < 180)

let store_routed_get_pays_hops () =
  let store = make_store 8 in
  Store.put store ~key:"k" ~value:"v";
  let r = Store.routed_get store ~src:0 ~key:"k" in
  Alcotest.(check (option string)) "found" (Some "v") r.Store.value;
  Alcotest.(check bool) "hops counted" true (r.Store.hops >= 0);
  Alcotest.(check int) "one owner reached" 1 (List.length r.Store.reached)

let store_routed_put_then_routed_get () =
  let store = make_store 9 in
  let rp = Store.routed_put store ~src:17 ~key:"routed" ~value:"value" in
  Alcotest.(check bool) "stored somewhere" true (rp.Store.reached <> []);
  let rg = Store.routed_get store ~src:900 ~key:"routed" in
  Alcotest.(check (option string)) "readable from elsewhere" (Some "value") rg.Store.value

let store_survives_failures_with_replicas () =
  (* Kill 40% of nodes including (often) primaries: replicated reads keep
     working through backtracking, unreplicated ones lose data. *)
  let n = 2048 in
  let net = Network.build_ideal ~n ~links:11 (Rng.of_int 10) in
  let replicated = Store.create ~replicas:3 net in
  let bare = Store.create ~replicas:1 net in
  let keys = List.init 150 (fun i -> Printf.sprintf "key-%d" i) in
  List.iter
    (fun k ->
      Store.put replicated ~key:k ~value:k;
      Store.put bare ~key:k ~value:k)
    keys;
  let mask = Failure.random_node_fraction (Rng.of_int 11) ~n ~fraction:0.4 in
  let failures = Failure.of_node_mask mask in
  let rng = Rng.of_int 12 in
  let src =
    let rec live () =
      let v = Rng.int rng n in
      if Bitset.get mask v then v else live ()
    in
    live ()
  in
  let hits store =
    List.fold_left
      (fun acc k ->
        let r =
          Store.routed_get ~failures ~strategy:(Route.Backtrack { history = 5 }) ~rng store
            ~src ~key:k
        in
        if r.Store.value = Some k then acc + 1 else acc)
      0 keys
  in
  let replicated_hits = hits replicated and bare_hits = hits bare in
  Alcotest.(check bool)
    (Printf.sprintf "replicated %d/150 > bare %d/150" replicated_hits bare_hits)
    true
    (replicated_hits > bare_hits);
  Alcotest.(check bool)
    (Printf.sprintf "replicated survives (%d/150)" replicated_hits)
    true
    (replicated_hits >= 130)

let store_rejects () =
  Alcotest.check_raises "no replicas" (Invalid_argument "Store.create: need at least one replica")
    (fun () -> ignore (Store.create ~replicas:0 (Network.build_ideal ~n:16 ~links:1 (Rng.of_int 1))))

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

module Workload = Ftr_dht.Workload

let workload_draw_in_universe () =
  let w = Workload.create ~universe:50 () in
  Alcotest.(check int) "universe" 50 (Workload.universe w);
  let r = Rng.of_int 30 in
  for _ = 1 to 500 do
    let k = Workload.draw w r in
    Alcotest.(check bool) "key exists" true (Array.mem k (Workload.keys w))
  done

let workload_zipf_head_heavy () =
  let w = Workload.create ~exponent:1.0 ~universe:100 () in
  let r = Rng.of_int 31 in
  let hottest = (Workload.keys w).(0) in
  let hits = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Workload.draw w r = hottest then incr hits
  done;
  (* Rank 1 carries 1/H_100 ~ 19% of the mass. *)
  let rate = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool) (Printf.sprintf "head rate %.3f" rate) true
    (abs_float (rate -. 0.193) < 0.02)

let workload_load_measured () =
  let net = Network.build_ideal ~n:1024 ~links:8 (Rng.of_int 32) in
  let store = Store.create net in
  let w = Workload.create ~universe:200 () in
  Array.iter (fun k -> Store.put store ~key:k ~value:"v") (Workload.keys w);
  let report = Workload.measure_load ~store ~requests:400 w (Rng.of_int 33) in
  Alcotest.(check int) "requests" 400 report.Workload.requests;
  Alcotest.(check (float 1e-9)) "all hits" 1.0 report.Workload.hit_rate;
  Alcotest.(check bool) "hops sane" true (report.Workload.mean_hops > 0.0);
  (* Zipf skew concentrates serving load far above the mean. *)
  Alcotest.(check bool)
    (Printf.sprintf "serving hotspot factor %.1f" report.Workload.serve_max_over_mean)
    true
    (report.Workload.serve_max_over_mean > 3.0)

let workload_spread_reduces_hotspot () =
  let net = Network.build_ideal ~n:1024 ~links:8 (Rng.of_int 34) in
  let store = Store.create ~replicas:4 net in
  let w = Workload.create ~universe:100 () in
  Array.iter (fun k -> Store.put store ~key:k ~value:"v") (Workload.keys w);
  let focused = Workload.measure_load ~store ~requests:600 w (Rng.of_int 35) in
  let spread = Workload.measure_load ~spread:true ~store ~requests:600 w (Rng.of_int 35) in
  Alcotest.(check bool)
    (Printf.sprintf "spread %.1f < focused %.1f" spread.Workload.serve_max_over_mean
       focused.Workload.serve_max_over_mean)
    true
    (spread.Workload.serve_max_over_mean < focused.Workload.serve_max_over_mean);
  Alcotest.(check bool) "spread reads still hit" true (spread.Workload.hit_rate > 0.99)

let workload_rejects () =
  Alcotest.check_raises "empty universe"
    (Invalid_argument "Workload.create: universe must be >= 1") (fun () ->
      ignore (Workload.create ~universe:0 ()))

(* ------------------------------------------------------------------ *)
(* Dynamic store                                                       *)
(* ------------------------------------------------------------------ *)

let make_dynamic ?(replicas = 1) ?(line_size = 1024) ?(nodes = 64) seed =
  let engine = Engine.create () in
  let overlay = Overlay.create ~line_size ~links:8 ~rng:(Rng.of_int seed) engine in
  Overlay.populate overlay ~positions:(List.init nodes (fun i -> i * line_size / nodes));
  (engine, overlay, Dynamic.create ~replicas ~line_size overlay)

let dynamic_put_get () =
  let engine, _, dht = make_dynamic 20 in
  Dynamic.put dht ~from:0 ~key:"hello" ~value:"world";
  Engine.run engine;
  let result = ref None in
  Dynamic.get dht ~from:512 ~key:"hello" ~callback:(fun v -> result := v);
  Engine.run engine;
  Alcotest.(check (option string)) "roundtrip across the overlay" (Some "world") !result

let dynamic_missing_key () =
  let engine, _, dht = make_dynamic 21 in
  let result = ref (Some "sentinel") in
  Dynamic.get dht ~from:0 ~key:"absent" ~callback:(fun v -> result := v);
  Engine.run engine;
  Alcotest.(check (option string)) "miss reported" None !result

let dynamic_many_pairs () =
  let engine, _, dht = make_dynamic 22 in
  for i = 0 to 99 do
    Dynamic.put dht ~from:0 ~key:(Printf.sprintf "k%d" i) ~value:(string_of_int i)
  done;
  Engine.run engine;
  Alcotest.(check int) "all stored" 100 (Dynamic.stored_pairs dht);
  let hits = ref 0 in
  for i = 0 to 99 do
    Dynamic.get dht ~from:512 ~key:(Printf.sprintf "k%d" i) ~callback:(fun v ->
        if v = Some (string_of_int i) then incr hits)
  done;
  Engine.run engine;
  Alcotest.(check int) "all found" 100 !hits

let dynamic_crash_loses_unreplicated () =
  let engine, overlay, dht = make_dynamic 23 in
  Dynamic.put dht ~from:0 ~key:"doomed" ~value:"x";
  Engine.run engine;
  (* Find where it landed and crash that node. *)
  let holder = ref (-1) in
  Dynamic.get dht ~from:0 ~key:"doomed" ~callback:(fun _ -> ());
  Engine.run engine;
  List.iter
    (fun pos -> if !holder < 0 && Dynamic.stored_pairs dht > 0 then holder := pos)
    (Overlay.live_positions overlay);
  (* Locate by checking the owner's point. *)
  let point = Keyspace.point ~line_size:1024 "doomed" in
  let owner =
    (* closest live node to the point *)
    List.fold_left
      (fun best pos -> if abs (pos - point) < abs (best - point) then pos else best)
      (List.hd (Overlay.live_positions overlay))
      (Overlay.live_positions overlay)
  in
  Overlay.crash overlay ~pos:owner;
  let result = ref (Some "sentinel") in
  Dynamic.get dht ~from:0 ~key:"doomed" ~callback:(fun v -> result := v);
  Engine.run engine;
  Alcotest.(check (option string)) "value died with its node" None !result

let dynamic_replicas_survive_crash () =
  let engine, overlay, dht = make_dynamic ~replicas:3 24 in
  Dynamic.put dht ~from:0 ~key:"precious" ~value:"kept";
  Engine.run engine;
  (* Crash the primary owner. *)
  let point = Keyspace.point ~line_size:1024 "precious" in
  let owner =
    List.fold_left
      (fun best pos -> if abs (pos - point) < abs (best - point) then pos else best)
      (List.hd (Overlay.live_positions overlay))
      (Overlay.live_positions overlay)
  in
  Overlay.crash overlay ~pos:owner;
  let result = ref None in
  Dynamic.get dht ~from:0 ~key:"precious" ~callback:(fun v -> result := v);
  Engine.run engine;
  Alcotest.(check (option string)) "a replica answered" (Some "kept") !result

let dynamic_rebalance_restores_replicas () =
  let engine, overlay, dht = make_dynamic ~replicas:2 25 in
  for i = 0 to 49 do
    Dynamic.put dht ~from:0 ~key:(Printf.sprintf "k%d" i) ~value:"v"
  done;
  Engine.run engine;
  let before = Dynamic.stored_pairs dht in
  (* Crash a batch of nodes, losing some copies. *)
  let rng = Rng.of_int 26 in
  List.iter
    (fun pos ->
      if Rng.bernoulli rng 0.25 && Overlay.node_count overlay > 8 && pos <> 0 then
        Overlay.crash overlay ~pos)
    (Overlay.live_positions overlay);
  let after_crash = Dynamic.stored_pairs dht in
  Alcotest.(check bool) "copies lost" true (after_crash < before);
  (* Anti-entropy brings the count back up. *)
  ignore (Dynamic.rebalance dht);
  Engine.run engine;
  let after_rebalance = Dynamic.stored_pairs dht in
  Alcotest.(check bool)
    (Printf.sprintf "restored %d -> %d" after_crash after_rebalance)
    true
    (after_rebalance > after_crash);
  let s = Dynamic.stats dht in
  Alcotest.(check bool) "puts counted" true (s.Dynamic.puts >= 50)

let dynamic_handoff_saves_data () =
  let engine, overlay, dht = make_dynamic 27 in
  Dynamic.put dht ~from:0 ~key:"survivor" ~value:"carried";
  Engine.run engine;
  (* Find the holder and have it leave gracefully with a handoff. *)
  let point = Keyspace.point ~line_size:1024 "survivor" in
  let owner =
    List.fold_left
      (fun best pos -> if abs (pos - point) < abs (best - point) then pos else best)
      (List.hd (Overlay.live_positions overlay))
      (Overlay.live_positions overlay)
  in
  let moved = Dynamic.leave_with_handoff dht ~pos:owner in
  Engine.run engine;
  Alcotest.(check int) "one pair handed off" 1 moved;
  Alcotest.(check bool) "node gone" false (Overlay.is_alive overlay owner);
  let result = ref None in
  Dynamic.get dht ~from:0 ~key:"survivor" ~callback:(fun v -> result := v);
  Engine.run engine;
  Alcotest.(check (option string)) "data survived the departure" (Some "carried") !result

let dynamic_handoff_of_empty_node () =
  let engine, overlay, dht = make_dynamic 28 in
  ignore engine;
  let victim = List.nth (Overlay.live_positions overlay) 3 in
  Alcotest.(check int) "nothing to move" 0 (Dynamic.leave_with_handoff dht ~pos:victim);
  Alcotest.(check bool) "still leaves" false (Overlay.is_alive overlay victim)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_store_roundtrip =
  QCheck.Test.make ~name:"store put/get roundtrips arbitrary keys" ~count:100
    QCheck.(triple (int_range 2 256) (int_range 1 4) (small_list string))
    (fun (n, replicas, raw_keys) ->
      let store = Store.create ~replicas (Network.build_ideal ~n ~links:2 (Rng.of_int n)) in
      let keys = List.sort_uniq compare raw_keys in
      List.iteri (fun i k -> Store.put store ~key:k ~value:(string_of_int i)) keys;
      List.for_all
        (fun k ->
          match Store.get store ~key:k with
          | Some _ -> true
          | None -> false)
        keys)

let prop_routed_get_finds_stored =
  QCheck.Test.make ~name:"routed get finds every stored key without failures" ~count:50
    QCheck.(pair (int_range 8 256) small_int)
    (fun (n, seed) ->
      let store = Store.create (Network.build_ideal ~n ~links:3 (Rng.of_int seed)) in
      Store.put store ~key:"k" ~value:"v";
      let r = Rng.of_int (seed + 1) in
      let src = Rng.int r n in
      (Store.routed_get store ~src ~key:"k").Store.value = Some "v")

let prop_store_model_based =
  (* Random put/get/remove sequences against a plain Hashtbl model. *)
  QCheck.Test.make ~name:"store agrees with a hashtable model" ~count:60
    QCheck.(
      pair small_int
        (list_of_size (Gen.int_range 1 60)
           (triple (int_range 0 2) (int_range 0 9) (int_range 0 99))))
    (fun (seed, ops) ->
      let store =
        Store.create ~replicas:2 (Network.build_ideal ~n:128 ~links:2 (Rng.of_int seed))
      in
      let model : (string, string) Hashtbl.t = Hashtbl.create 16 in
      List.for_all
        (fun (op, k, v) ->
          let key = Printf.sprintf "k%d" k in
          match op with
          | 0 ->
              let value = Printf.sprintf "v%d" v in
              Store.put store ~key ~value;
              Hashtbl.replace model key value;
              true
          | 1 ->
              Store.remove store ~key;
              Hashtbl.remove model key;
              true
          | _ -> Store.get store ~key = Hashtbl.find_opt model key)
        ops)

let prop_keyspace_point_stable =
  QCheck.Test.make ~name:"keyspace points deterministic and in range" ~count:300
    QCheck.(pair (int_range 1 100000) string)
    (fun (line_size, key) ->
      let p = Keyspace.point ~line_size key in
      p >= 0 && p < line_size && p = Keyspace.point ~line_size key)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dht"
    [
      ( "keyspace",
        [
          quick "deterministic" keyspace_deterministic;
          quick "fnv known vectors" keyspace_fnv_known_vectors;
          quick "points in range" keyspace_points_in_range;
          quick "spreads evenly (chi-square)" keyspace_spreads_evenly;
          quick "salts independent" keyspace_salts_independent;
          quick "avalanche" keyspace_avalanche;
          quick "salt zero is the primary point" keyspace_salt_zero_is_point;
        ] );
      ( "store",
        [
          quick "put/get roundtrip" store_put_get_roundtrip;
          quick "missing key" store_missing_key;
          quick "overwrite" store_overwrite;
          quick "remove" store_remove;
          quick "owner is nearest node" store_owner_is_nearest;
          quick "replica placement" store_replica_count;
          quick "load balanced" store_load_balanced;
          quick "routed get" store_routed_get_pays_hops;
          quick "routed put then get" store_routed_put_then_routed_get;
          quick "replicas survive failures" store_survives_failures_with_replicas;
          quick "rejects zero replicas" store_rejects;
        ] );
      ( "workload",
        [
          quick "draws from the universe" workload_draw_in_universe;
          quick "zipf head mass" workload_zipf_head_heavy;
          quick "load measurement" workload_load_measured;
          quick "replica spreading tames hotspots" workload_spread_reduces_hotspot;
          quick "rejects empty universe" workload_rejects;
        ] );
      ( "dynamic",
        [
          quick "put/get over the protocol" dynamic_put_get;
          quick "missing key" dynamic_missing_key;
          quick "many pairs" dynamic_many_pairs;
          quick "crash loses unreplicated data" dynamic_crash_loses_unreplicated;
          quick "replicas survive a crash" dynamic_replicas_survive_crash;
          quick "rebalance restores copies" dynamic_rebalance_restores_replicas;
          quick "graceful handoff saves data" dynamic_handoff_saves_data;
          quick "handoff of an empty node" dynamic_handoff_of_empty_node;
        ] );
      ( "properties",
        List.map (fun p -> QCheck_alcotest.to_alcotest p)
          [
            prop_store_roundtrip;
            prop_routed_get_finds_stored;
            prop_keyspace_point_stable;
            prop_store_model_based;
          ] );
    ]
