module E = Ftr_core.Experiment
module Network = Ftr_core.Network
module Failure = Ftr_core.Failure
module Rng = Ftr_prng.Rng

(* All experiments here run at small scale — the point is that the drivers
   produce well-formed rows whose shapes match the paper, not to redo the
   full benchmark. *)

(* ------------------------------------------------------------------ *)
(* Measurement kernel                                                  *)
(* ------------------------------------------------------------------ *)

let measure_failure_free () =
  let net = Network.build_ideal ~n:512 ~links:4 (Rng.of_int 1) in
  let m = E.measure ~messages:200 ~rng:(Rng.of_int 2) net in
  Alcotest.(check (float 1e-9)) "no failures" 0.0 m.E.failed_fraction;
  Alcotest.(check int) "message count" 200 m.E.messages;
  Alcotest.(check bool) "hops positive" true (m.E.mean_hops > 0.0)

let measure_with_pairs () =
  let net = Network.build_ideal ~n:64 ~links:2 (Rng.of_int 3) in
  let pairs = [| (0, 63); (63, 0); (5, 5) |] in
  let m = E.measure ~pairs ~messages:3 ~rng:(Rng.of_int 4) net in
  Alcotest.(check (float 1e-9)) "delivered all" 0.0 m.E.failed_fraction

let random_live_pairs_all_live () =
  let n = 128 in
  let mask = Failure.random_node_fraction (Rng.of_int 5) ~n ~fraction:0.5 in
  let failures = Failure.of_node_mask mask in
  let pairs = E.random_live_pairs (Rng.of_int 6) failures ~n ~messages:100 in
  Array.iter
    (fun (s, d) ->
      Alcotest.(check bool) "src alive" true (Failure.node_alive failures s);
      Alcotest.(check bool) "dst alive" true (Failure.node_alive failures d))
    pairs

(* ------------------------------------------------------------------ *)
(* Figure 5                                                            *)
(* ------------------------------------------------------------------ *)

let figure5_small () =
  let r = E.figure5 ~networks:2 ~n:1024 ~links:8 ~seed:7 () in
  Alcotest.(check int) "networks recorded" 2 r.E.networks;
  Alcotest.(check bool) "points reported" true (List.length r.E.points > 8);
  Alcotest.(check bool)
    (Printf.sprintf "max error %.4f small" r.E.max_abs_error)
    true (r.E.max_abs_error < 0.08);
  Alcotest.(check bool) "worst error at short length" true (r.E.max_abs_error_length <= 8);
  List.iter
    (fun p ->
      Alcotest.(check bool) "derived is a probability" true
        (p.E.derived >= 0.0 && p.E.derived <= 1.0);
      Alcotest.(check (float 1e-9)) "error consistent" (p.E.derived -. p.E.ideal) p.E.error)
    r.E.points

let figure5_oldest_strategy () =
  let r =
    E.figure5 ~replacement:Ftr_core.Heuristic.Oldest ~networks:2 ~n:1024 ~links:8 ~seed:8 ()
  in
  Alcotest.(check bool) "oldest also tracks" true (r.E.max_abs_error < 0.1)

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)
(* ------------------------------------------------------------------ *)

let figure6_shapes () =
  let rows =
    E.figure6 ~n:2048 ~links:8 ~networks:2 ~messages:100 ~fractions:[ 0.0; 0.3; 0.6 ] ~seed:9 ()
  in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  let r0 = List.nth rows 0 and r3 = List.nth rows 1 and r6 = List.nth rows 2 in
  (* No failures: every strategy delivers everything. *)
  Alcotest.(check (float 1e-9)) "p=0 terminate" 0.0 r0.E.terminate.E.failed_fraction;
  Alcotest.(check (float 1e-9)) "p=0 backtrack" 0.0 r0.E.backtrack.E.failed_fraction;
  (* Backtracking dominates terminate at every failure level. *)
  List.iter
    (fun r ->
      Alcotest.(check bool) "backtrack <= terminate" true
        (r.E.backtrack.E.failed_fraction <= r.E.terminate.E.failed_fraction +. 1e-9);
      Alcotest.(check bool) "reroute <= terminate" true
        (r.E.reroute.E.failed_fraction <= r.E.terminate.E.failed_fraction +. 1e-9))
    rows;
  (* Failures increase with the failure fraction for terminate. *)
  Alcotest.(check bool) "monotone failures" true
    (r0.E.terminate.E.failed_fraction <= r3.E.terminate.E.failed_fraction
    && r3.E.terminate.E.failed_fraction <= r6.E.terminate.E.failed_fraction)

(* ------------------------------------------------------------------ *)
(* Figure 7                                                            *)
(* ------------------------------------------------------------------ *)

let figure7_shapes () =
  let rows = E.figure7 ~n:1024 ~links:10 ~networks:2 ~messages:100 ~probs:[ 0.0; 0.5 ] ~seed:10 () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let r0 = List.hd rows in
  Alcotest.(check (float 1e-9)) "ideal perfect at p=0" 0.0 r0.E.ideal_failed;
  Alcotest.(check (float 1e-9)) "constructed perfect at p=0" 0.0 r0.E.constructed_failed;
  let r5 = List.nth rows 1 in
  Alcotest.(check bool) "failures appear at p=0.5" true
    (r5.E.ideal_failed > 0.0 || r5.E.constructed_failed > 0.0);
  (* The paper: constructed is comparable to ideal (within a few x). *)
  Alcotest.(check bool)
    (Printf.sprintf "constructed %.3f comparable to ideal %.3f" r5.E.constructed_failed
       r5.E.ideal_failed)
    true
    (r5.E.constructed_failed < (4.0 *. r5.E.ideal_failed) +. 0.1)

(* ------------------------------------------------------------------ *)
(* Table 1 sweeps                                                      *)
(* ------------------------------------------------------------------ *)

let all_ratios_below_one rows =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s param %.2f: measured %.2f <= bound %.2f" r.E.label r.E.parameter
           r.E.measured r.E.bound)
        true (r.E.ratio <= 1.0))
    rows

let sweep_single_link_bounded () =
  all_ratios_below_one (E.sweep_single_link ~ns:[ 256; 1024 ] ~networks:2 ~messages:150 ~seed:11 ())

let sweep_multi_link_bounded () =
  all_ratios_below_one
    (E.sweep_multi_link ~n:2048 ~links_list:[ 1; 4; 8 ] ~networks:2 ~messages:150 ~seed:12 ())

let sweep_multi_link_monotone () =
  let rows = E.sweep_multi_link ~n:4096 ~links_list:[ 1; 4; 11 ] ~networks:3 ~messages:200 ~seed:13 () in
  match rows with
  | [ a; b; c ] ->
      Alcotest.(check bool) "more links, fewer hops" true
        (a.E.measured > b.E.measured && b.E.measured > c.E.measured)
  | _ -> Alcotest.fail "expected three rows"

let sweep_deterministic_bounded () =
  all_ratios_below_one (E.sweep_deterministic ~ns:[ 256; 4096 ] ~base:2 ~messages:200 ~seed:14 ())

let sweep_link_failure_bounded () =
  all_ratios_below_one
    (E.sweep_link_failure ~n:2048 ~links:8 ~probs:[ 1.0; 0.5 ] ~networks:2 ~messages:150 ~seed:15 ())

let sweep_link_failure_monotone () =
  let rows =
    E.sweep_link_failure ~n:4096 ~links:8 ~probs:[ 1.0; 0.4 ] ~networks:3 ~messages:200 ~seed:16 ()
  in
  match rows with
  | [ full; degraded ] ->
      Alcotest.(check bool) "fewer live links, more hops" true
        (degraded.E.measured > full.E.measured)
  | _ -> Alcotest.fail "expected two rows"

let sweep_geometric_bounded () =
  all_ratios_below_one
    (E.sweep_geometric_link_failure ~n:2048 ~base:2 ~probs:[ 1.0; 0.6 ] ~networks:2 ~messages:150
       ~seed:17 ())

let sweep_binomial_bounded () =
  all_ratios_below_one
    (E.sweep_binomial_nodes ~n:2048 ~links:1 ~probs:[ 1.0; 0.5 ] ~networks:2 ~messages:150
       ~seed:18 ())

let sweep_node_failure_bounded () =
  all_ratios_below_one
    (E.sweep_node_failure ~n:2048 ~links:8 ~probs:[ 0.0; 0.3 ] ~networks:2 ~messages:150 ~seed:19 ())

let sweep_lower_bound_above_one () =
  let rows = E.sweep_lower_bound ~ns:[ 1024; 8192 ] ~links:3 ~trials:150 ~seed:20 () in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "measured %.1f >= bound %.1f" r.E.measured r.E.bound)
        true (r.E.ratio >= 1.0))
    rows

let sweep_exponent_one_is_best () =
  let rows =
    E.sweep_exponent ~n:4096 ~links:2 ~exponents:[ 0.0; 1.0; 2.0 ] ~networks:3 ~messages:200
      ~seed:21 ()
  in
  match rows with
  | [ uniform; harmonic; quadratic ] ->
      Alcotest.(check bool)
        (Printf.sprintf "exp 1 (%.1f) beats exp 0 (%.1f)" harmonic.E.measured uniform.E.measured)
        true
        (harmonic.E.measured < uniform.E.measured);
      Alcotest.(check bool)
        (Printf.sprintf "exp 1 (%.1f) beats exp 2 (%.1f)" harmonic.E.measured quadratic.E.measured)
        true
        (harmonic.E.measured < quadratic.E.measured)
  | _ -> Alcotest.fail "expected three rows"

let sweep_sides_ordering () =
  let rows = E.sweep_sides ~n:2048 ~links:4 ~networks:2 ~messages:200 ~seed:22 () in
  match rows with
  | [ one; two ] ->
      Alcotest.(check bool) "two-sided at least as fast" true (two.E.measured <= one.E.measured)
  | _ -> Alcotest.fail "expected two rows"

let sweep_geometry_comparable () =
  let rows = E.sweep_geometry ~n:2048 ~links:6 ~networks:2 ~messages:150 ~seed:24 () in
  match rows with
  | [ line; circle ] ->
      Alcotest.(check string) "labels" "line" line.E.label;
      Alcotest.(check string) "labels" "circle" circle.E.label;
      Alcotest.(check bool) "both bounded" true (line.E.ratio <= 1.0 && circle.E.ratio <= 1.0);
      (* Same asymptotics: within 30% of each other. *)
      Alcotest.(check bool)
        (Printf.sprintf "line %.2f vs circle %.2f" line.E.measured circle.E.measured)
        true
        (abs_float (line.E.measured -. circle.E.measured) < 0.3 *. line.E.measured)
  | _ -> Alcotest.fail "expected two rows"

let sweep_dimensions_improves () =
  let rows =
    E.sweep_dimensions
      ~configs:[ (1, 1024); (2, 32) ]
      ~links:4 ~death_p:0.3 ~networks:2 ~messages:150 ~seed:25 ()
  in
  match rows with
  | [ one; two ] ->
      Alcotest.(check int) "matched node counts" one.E.nodes two.E.nodes;
      Alcotest.(check bool) "delivery works in both" true
        (one.E.failed_nd < 0.5 && two.E.failed_nd < 0.5);
      Alcotest.(check bool)
        (Printf.sprintf "2d (%.2f hops) at most 1d (%.2f hops)" two.E.mean_hops_nd
           one.E.mean_hops_nd)
        true
        (two.E.mean_hops_nd <= one.E.mean_hops_nd)
  | _ -> Alcotest.fail "expected two rows"

let sweep_stretch_sane () =
  let rows = E.sweep_stretch ~n:1024 ~links_list:[ 2; 8 ] ~pairs:60 ~seed:26 () in
  match rows with
  | [ sparse; dense ] ->
      List.iter
        (fun r ->
          Alcotest.(check bool) "stretch >= 1" true (r.E.mean_stretch >= 1.0);
          Alcotest.(check bool)
            (Printf.sprintf "greedy pays a bounded premium (%.2f)" r.E.mean_stretch)
            true
            (r.E.mean_stretch < 4.0))
        [ sparse; dense ];
      Alcotest.(check bool) "more links, shorter optimal paths" true
        (dense.E.mean_optimal <= sparse.E.mean_optimal)
  | _ -> Alcotest.fail "expected two rows"

let sweep_backtrack_history_helps () =
  let rows =
    E.sweep_backtrack_history ~n:2048 ~links:8 ~fraction:0.5 ~histories:[ 1; 5 ] ~networks:3
      ~messages:150 ~seed:23 ()
  in
  match rows with
  | [ short; long ] ->
      Alcotest.(check int) "labels" 1 short.E.history;
      Alcotest.(check bool)
        (Printf.sprintf "history 5 (%.3f) <= history 1 (%.3f)"
           long.E.result.E.failed_fraction short.E.result.E.failed_fraction)
        true
        (long.E.result.E.failed_fraction <= short.E.result.E.failed_fraction +. 0.02)
  | _ -> Alcotest.fail "expected two rows"

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "experiment"
    [
      ( "kernel",
        [
          quick "failure-free measurement" measure_failure_free;
          quick "explicit pairs" measure_with_pairs;
          quick "random live pairs" random_live_pairs_all_live;
        ] );
      ( "figure5",
        [ slow "small run" figure5_small; slow "oldest replacement" figure5_oldest_strategy ] );
      ("figure6", [ slow "strategy shapes" figure6_shapes ]);
      ("figure7", [ slow "ideal vs constructed" figure7_shapes ]);
      ( "table1",
        [
          slow "single link bounded" sweep_single_link_bounded;
          slow "multi link bounded" sweep_multi_link_bounded;
          slow "multi link monotone" sweep_multi_link_monotone;
          slow "deterministic bounded" sweep_deterministic_bounded;
          slow "link failure bounded" sweep_link_failure_bounded;
          slow "link failure monotone" sweep_link_failure_monotone;
          slow "geometric bounded" sweep_geometric_bounded;
          slow "binomial bounded" sweep_binomial_bounded;
          slow "node failure bounded" sweep_node_failure_bounded;
          slow "lower bound respected" sweep_lower_bound_above_one;
          slow "exponent 1 optimal" sweep_exponent_one_is_best;
          slow "side ordering" sweep_sides_ordering;
          slow "backtrack history ablation" sweep_backtrack_history_helps;
          slow "geometry: line vs circle" sweep_geometry_comparable;
          slow "stretch: greedy vs optimal" sweep_stretch_sane;
          slow "dimensions: 2d beats 1d at matched n" sweep_dimensions_improves;
        ] );
    ]
