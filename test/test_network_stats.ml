(* ftr-lint: disable-file T3 test assertions compare small concrete values *)
module Network = Ftr_core.Network
module Stats = Ftr_core.Network_stats
module Summary = Ftr_stats.Summary
module Rng = Ftr_prng.Rng

let rng () = Rng.of_int 8086

let net () = Network.build_ideal ~n:2048 ~links:8 (rng ())

(* ------------------------------------------------------------------ *)
(* Degrees                                                             *)
(* ------------------------------------------------------------------ *)

let out_degree_exact () =
  let s = Stats.out_degree_summary (net ()) in
  (* links + 2 immediate, minus the boundary nodes' missing side. *)
  Alcotest.(check int) "count" 2048 (Summary.count s);
  Alcotest.(check bool) "mean near links+2" true (abs_float (Summary.mean s -. 10.0) < 0.01);
  Alcotest.(check (float 1e-9)) "max" 10.0 (Summary.max_value s);
  Alcotest.(check (float 1e-9)) "min (boundary)" 9.0 (Summary.min_value s)

let in_degree_conserves_edges () =
  let n = net () in
  let total_out = ref 0 in
  for i = 0 to Network.size n - 1 do
    total_out := !total_out + Array.length (Network.neighbors n i)
  done;
  let total_in = Array.fold_left ( + ) 0 (Stats.in_degrees n) in
  Alcotest.(check int) "sum of in-degrees = sum of out-degrees" !total_out total_in

let in_degree_mean_matches_out () =
  let n = net () in
  let in_s = Stats.in_degree_summary n and out_s = Stats.out_degree_summary n in
  Alcotest.(check (float 1e-6)) "same mean" (Summary.mean out_s) (Summary.mean in_s)

let in_degree_no_hotspot_on_random_net () =
  (* Poisson-ish in-degrees: the max over 2048 nodes with mean 10 stays
     well under 4x the mean. *)
  let h = Stats.in_degree_hotspot (net ()) in
  Alcotest.(check bool) (Printf.sprintf "hotspot %.2f" h) true (h < 4.0)

let in_degree_geometric_is_flat () =
  (* The deterministic geometric network has identical in- and out-degrees
     for interior nodes: no randomness, no spread. *)
  let n = Network.build_geometric ~n:1024 ~base:2 in
  let h = Stats.in_degree_hotspot n in
  Alcotest.(check bool) (Printf.sprintf "flat (%.2f)" h) true (h < 1.5)

(* ------------------------------------------------------------------ *)
(* Lengths and boundary                                                *)
(* ------------------------------------------------------------------ *)

let percentiles_ordered () =
  match Stats.length_percentiles (net ()) with
  | None -> Alcotest.fail "expected lengths"
  | Some (med, p90, p99) ->
      Alcotest.(check bool) "ordered" true (med <= p90 && p90 <= p99);
      (* Median of the 1/d law over [1, n-1] is around sqrt(n). *)
      Alcotest.(check bool) (Printf.sprintf "median %.0f near sqrt n" med) true
        (med > 10.0 && med < 300.0)

let percentiles_absent_on_chain () =
  let chain = Network.build_ideal ~n:64 ~links:0 (rng ()) in
  Alcotest.(check bool) "no long links" true (Stats.length_percentiles chain = None)

let boundary_distortion_line_vs_circle () =
  let line = Network.build_ideal ~n:4096 ~links:8 (Rng.of_int 1) in
  let circle = Network.build_ring ~n:4096 ~links:8 (Rng.of_int 2) in
  let dl = Stats.boundary_distortion line in
  let dc = Stats.boundary_distortion circle in
  (* Edge nodes of the line reach farther; the circle is symmetric. *)
  Alcotest.(check bool) (Printf.sprintf "line distorted (%.2f)" dl) true (dl > 1.1);
  Alcotest.(check bool) (Printf.sprintf "circle flat (%.2f)" dc) true
    (abs_float (dc -. 1.0) < 0.15)

let anatomy_record_consistent () =
  let a = Stats.anatomy (net ()) in
  Alcotest.(check int) "nodes" 2048 a.Stats.nodes;
  Alcotest.(check bool) "in=out mean" true
    (abs_float (a.Stats.mean_in_degree -. a.Stats.mean_out_degree) < 1e-6);
  Alcotest.(check bool) "max >= mean" true
    (float_of_int a.Stats.max_in_degree >= a.Stats.mean_in_degree);
  Alcotest.(check bool) "percentiles ordered" true
    (a.Stats.median_length <= a.Stats.p90_length && a.Stats.p90_length <= a.Stats.p99_length)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "network_stats"
    [
      ( "degrees",
        [
          quick "out-degree exact" out_degree_exact;
          quick "edge conservation" in_degree_conserves_edges;
          quick "in mean = out mean" in_degree_mean_matches_out;
          quick "no hotspot on 1/d networks" in_degree_no_hotspot_on_random_net;
          quick "geometric networks are flat" in_degree_geometric_is_flat;
        ] );
      ( "lengths",
        [
          quick "percentiles ordered" percentiles_ordered;
          quick "absent on chains" percentiles_absent_on_chain;
          quick "boundary: line distorted, circle flat" boundary_distortion_line_vs_circle;
          quick "anatomy record" anatomy_record_consistent;
        ] );
    ]
