(* ftr-lint: disable-file R5 embedded lint samples carry a hot marker; the test file itself has no hot path *)
(* ftr_lint analyzer tests: one positive + one negative fixture per rule,
   the suppression directives, the baseline round-trip, and finally the
   analyzer applied to the real tree (which must be clean modulo the
   committed baseline). Fixtures are linted from strings via
   [Driver.lint_string], so each test is hermetic. *)

module Finding = Ftr_lint.Finding
module Driver = Ftr_lint.Driver
module Baseline = Ftr_lint.Baseline

(* Rule ids of the surviving findings for [source] linted as [file]. *)
let rules_of ?(file = "lib/fixture/fixture.ml") source =
  List.map (fun ((f : Finding.t), _) -> Finding.rule_id f.rule) (Driver.lint_string ~file source)

let check_rules name expected ?file source =
  Alcotest.(check (list string)) name expected (rules_of ?file source)

(* R1: nondeterminism sources *)

let test_r1 () =
  check_rules "Unix.gettimeofday fires" [ "R1" ] "let t = Unix.gettimeofday ()\n";
  check_rules "Random.int fires" [ "R1" ] "let r = Random.int 10\n";
  check_rules "Sys.time fires" [ "R1" ] "let t = Sys.time ()\n";
  check_rules "seeded rng is fine" [] "let r rng = Ftr_prng.Rng.int rng 10\n";
  check_rules "clock seam file is allowlisted" [] ~file:"lib/exec/clock.ml"
    "let default () = Unix.gettimeofday ()\n"

(* R2: polymorphic comparison *)

let test_r2 () =
  check_rules "bare compare fires" [ "R2" ] "let sort a = Array.sort compare a\n";
  check_rules "poly = on tuple fires" [ "R2" ] "let f a = a = (1, 2)\n";
  check_rules "poly <> on string literal fires" [ "R2" ] "let f a = a <> \"x\"\n";
  check_rules "poly = on constructor payload fires" [ "R2" ] "let f a = a = Some 3\n";
  check_rules "typed comparator is fine" [] "let sort a = Array.sort Int.compare a\n";
  check_rules "poly = on bare idents is fine (type unknown)" [] "let f a b = a = b\n";
  check_rules "poly = against None is fine (immediate)" [] "let f a = a = None\n";
  check_rules "punned record field is fine" []
    "type t = { compare : int -> int -> int }\nlet make ~compare = { compare }\n"

(* R3: unordered iteration in output paths *)

let test_r3 () =
  check_rules "Hashtbl.iter inside emit_* fires" [ "R3" ]
    "let emit_rows tbl = Hashtbl.iter (fun k _ -> print_string k) tbl\n";
  check_rules "Hashtbl.fold inside to_json fires" [ "R3" ]
    "let to_json tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n";
  check_rules "iteration outside output paths is fine" []
    "let total tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0\n";
  check_rules "visibly sorted nearby is fine" []
    "let emit_rows tbl = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])\n"

(* R4: ungated telemetry *)

let test_r4 () =
  check_rules "ungated Metrics.incr fires" [ "R4" ]
    "let f () = Ftr_obs.Metrics.incr \"routes_total\"\n";
  check_rules "ungated Events.emit fires" [ "R4" ]
    "let f () = Ftr_obs.Events.emit ~time:0.0 ~kind:\"k\" []\n";
  check_rules "direct Flag.enabled gate is fine" []
    "let f () = if Ftr_obs.Flag.enabled () then Ftr_obs.Metrics.incr \"routes_total\"\n";
  check_rules "let-bound gate variable is fine" []
    "let f () =\n\
    \  let obs = Ftr_obs.Flag.enabled () in\n\
    \  if obs then Ftr_obs.Metrics.incr \"routes_total\"\n";
  check_rules "lib/obs itself is exempt" [] ~file:"lib/obs/metrics.ml"
    "let f () = Ftr_obs.Metrics.incr \"routes_total\"\n"

(* R5: hot-path allocation *)

let hot_tag = "(* " ^ "ftr-lint: hot -- fixture *)\n"

let test_r5 () =
  check_rules "List.mem in a hot module fires" [ "R5" ]
    (hot_tag ^ "let f x xs = List.mem x xs\n");
  check_rules "@ in a hot module fires" [ "R5" ] (hot_tag ^ "let f xs ys = xs @ ys\n");
  check_rules "same code without the tag is fine" [] "let f x xs = List.mem x xs\n";
  check_rules "arrays in a hot module are fine" []
    (hot_tag ^ "let f a = Array.unsafe_get a 0\n")

(* Suppression directives *)

let disable r = "(* " ^ "ftr-lint: disable " ^ r ^ " -- fixture justification *)"

let test_suppression () =
  check_rules "same-line disable" [] ("let t = Unix.gettimeofday () " ^ disable "R1" ^ "\n");
  check_rules "line-above disable" [] (disable "R1" ^ "\nlet t = Unix.gettimeofday ()\n");
  check_rules "disable of another rule does not apply" [ "R1" ]
    (disable "R2" ^ "\nlet t = Unix.gettimeofday ()\n");
  check_rules "multi-rule disable" []
    (disable "R1 R2" ^ "\nlet t = compare (Unix.gettimeofday ()) 0.0\n");
  check_rules "disable all" [] (disable "all" ^ "\nlet t = Unix.gettimeofday ()\n");
  check_rules "file-level disable" []
    ("(* " ^ "ftr-lint: disable-file R1 -- fixture *)\n\nlet a = 1\nlet t = Unix.gettimeofday ()\n");
  check_rules "suppression does not leak to later lines" [ "R1" ]
    (disable "R1" ^ "\nlet a = 1\nlet t = Unix.gettimeofday ()\n")

(* Baseline round-trip *)

let test_baseline () =
  let source = "let t = Unix.gettimeofday ()\nlet u = compare 1 2\n" in
  let findings = Driver.lint_string ~file:"lib/fixture/fixture.ml" source in
  Alcotest.(check int) "two findings" 2 (List.length findings);
  let entries =
    List.map (fun (f, line) -> Baseline.entry_of_finding ~source_line:line f) findings
  in
  let path = Filename.temp_file "ftr_lint_test" ".baseline" in
  Baseline.save path entries;
  let reloaded = Baseline.load path in
  Sys.remove path;
  Alcotest.(check int) "round-trip preserves entries" (List.length entries)
    (List.length reloaded);
  let fresh, baselined, stale = Baseline.apply reloaded findings in
  Alcotest.(check int) "all findings absorbed" 0 (List.length fresh);
  Alcotest.(check int) "both baselined" 2 baselined;
  Alcotest.(check int) "no stale entries" 0 stale;
  (* An entry is keyed by line *text*: touching the flagged line retires
     it, touching other lines does not. *)
  let moved = "let zero = 0\n\nlet t = Unix.gettimeofday ()\nlet u = compare 1 2\n" in
  let fresh, _, stale = Baseline.apply reloaded (Driver.lint_string ~file:"lib/fixture/fixture.ml" moved) in
  Alcotest.(check int) "line moves keep the baseline valid" 0 (List.length fresh);
  Alcotest.(check int) "line moves leave nothing stale" 0 stale;
  let edited = "let t = Unix.gettimeofday () |> ignore\nlet u = compare 1 2\n" in
  let fresh, _, stale = Baseline.apply reloaded (Driver.lint_string ~file:"lib/fixture/fixture.ml" edited) in
  Alcotest.(check int) "editing the flagged line retires the entry" 1 (List.length fresh);
  Alcotest.(check int) "retired entry reported stale" 1 stale

(* Self-application: the committed tree is clean modulo lint.baseline.
   Tests run from _build/default/test; walk up to the build context root
   (the nearest ancestor holding dune-project), where the dune rule's
   source_tree deps materialise lib/, bin/ and bench/. *)

let find_root () =
  let rec up d =
    if Sys.file_exists (Filename.concat d "dune-project") then Some d
    else
      let parent = Filename.dirname d in
      if String.equal parent d then None else up parent
  in
  up (Sys.getcwd ())

let test_self_application () =
  match find_root () with
  | None -> Alcotest.fail "no dune-project above the test's working directory"
  | Some root ->
      let dir d = Filename.concat root d in
      let all =
        List.concat_map Driver.lint_file (Driver.find_sources [ dir "lib"; dir "bin"; dir "bench" ])
      in
      (* Strip the root prefix so finding keys match the committed
         baseline, which uses repo-relative paths. *)
      let rel (f : Finding.t) =
        let p = String.length root + 1 in
        { f with file = String.sub f.file p (String.length f.file - p) }
      in
      let all = List.map (fun (f, line) -> (rel f, line)) all in
      let entries = Baseline.load (Filename.concat root "lint.baseline") in
      let fresh, _, stale = Baseline.apply entries all in
      Alcotest.(check (list string))
        "no non-baselined findings in the tree"
        []
        (List.map (fun (f, _) -> Finding.to_string f) fresh);
      Alcotest.(check int) "no stale baseline entries" 0 stale

(* Report formatting *)

let test_reporting () =
  match Driver.lint_string ~file:"lib/x/y.ml" "let t = Sys.time ()\n" with
  | [ (f, line) ] ->
      Alcotest.(check string) "source line captured" "let t = Sys.time ()" line;
      Alcotest.(check string)
        "to_string shape" "lib/x/y.ml:1:8: R1 nondeterminism-source"
        (String.sub (Finding.to_string f) 0 (String.length "lib/x/y.ml:1:8: R1 nondeterminism-source"));
      let json = Finding.to_json f in
      Alcotest.(check bool) "json carries the rule id" true
        (Option.is_some (Ftr_lint.Suppress.find_sub json {|"rule":"R1"|}))
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 nondeterminism-source" `Quick test_r1;
          Alcotest.test_case "R2 polymorphic-comparison" `Quick test_r2;
          Alcotest.test_case "R3 unordered-iteration" `Quick test_r3;
          Alcotest.test_case "R4 ungated-telemetry" `Quick test_r4;
          Alcotest.test_case "R5 hot-path-allocation" `Quick test_r5;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "suppressions" `Quick test_suppression;
          Alcotest.test_case "baseline round-trip" `Quick test_baseline;
          Alcotest.test_case "reporting" `Quick test_reporting;
        ] );
      ("self", [ Alcotest.test_case "tree is clean" `Quick test_self_application ]);
    ]
