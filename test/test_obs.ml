(* ftr-lint: disable-file D1 R2 T3 the suite deliberately drives Tracing/Events with the flag in every state (no-op asserts, with_recorder-gated bodies) and compares small concrete values *)
module Flag = Ftr_obs.Flag
module Json = Ftr_obs.Json
module Metrics = Ftr_obs.Metrics
module Span = Ftr_obs.Span
module Events = Ftr_obs.Events
module Export = Ftr_obs.Export
module Network = Ftr_core.Network
module Route = Ftr_core.Route
module Rng = Ftr_prng.Rng

(* Every test that turns telemetry on runs inside [Flag.with_mode true]
   so the global flag is restored even on failure; the registries are
   global too, so tests reset what they touch. *)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let metrics_counters () =
  let r = Metrics.create () in
  Flag.with_mode true @@ fun () ->
  Metrics.incr ~registry:r "requests";
  Metrics.incr ~registry:r "requests";
  Metrics.incr_by ~registry:r "requests" 3;
  Alcotest.(check int) "accumulates" 5 (Metrics.counter_value ~registry:r "requests");
  Alcotest.(check int) "absent reads zero" 0 (Metrics.counter_value ~registry:r "nope");
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Metrics.incr_by: counters only go up") (fun () ->
      Metrics.incr_by ~registry:r "requests" (-1))

let metrics_labels () =
  let r = Metrics.create () in
  Flag.with_mode true @@ fun () ->
  Metrics.incr ~registry:r ~labels:[ ("reason", "stuck") ] "fail";
  Metrics.incr ~registry:r ~labels:[ ("reason", "stuck") ] "fail";
  Metrics.incr ~registry:r ~labels:[ ("reason", "limit") ] "fail";
  (* Label order must not split a series. *)
  Metrics.incr ~registry:r ~labels:[ ("b", "2"); ("a", "1") ] "pair";
  Metrics.incr ~registry:r ~labels:[ ("a", "1"); ("b", "2") ] "pair";
  Alcotest.(check int) "stuck series" 2
    (Metrics.counter_value ~registry:r ~labels:[ ("reason", "stuck") ] "fail");
  Alcotest.(check int) "limit series" 1
    (Metrics.counter_value ~registry:r ~labels:[ ("reason", "limit") ] "fail");
  Alcotest.(check int) "label order canonicalised" 2
    (Metrics.counter_value ~registry:r ~labels:[ ("b", "2"); ("a", "1") ] "pair")

let metrics_gauges () =
  let r = Metrics.create () in
  Flag.with_mode true @@ fun () ->
  Alcotest.(check bool) "absent gauge is nan" true
    (Float.is_nan (Metrics.gauge_value ~registry:r "depth"));
  Metrics.set_gauge ~registry:r "depth" 4.0;
  Metrics.set_gauge ~registry:r "depth" 7.5;
  Alcotest.(check (float 1e-9)) "last write wins" 7.5 (Metrics.gauge_value ~registry:r "depth")

let metrics_kind_clash () =
  let r = Metrics.create () in
  Flag.with_mode true @@ fun () ->
  Metrics.incr ~registry:r "x";
  (match Metrics.set_gauge ~registry:r "x" 1.0 with
  | () -> Alcotest.fail "expected a kind clash to raise"
  | exception Invalid_argument _ -> ());
  match Metrics.observe ~registry:r "x" 1.0 with
  | () -> Alcotest.fail "expected a kind clash to raise"
  | exception Invalid_argument _ -> ()

let metrics_histogram () =
  let r = Metrics.create () in
  Flag.with_mode true @@ fun () ->
  List.iter (fun v -> Metrics.observe ~registry:r "lat" v) [ 0.5; 1.0; 2.0; 3.0; 100.0 ];
  let items = Metrics.snapshot ~registry:r () in
  Alcotest.(check int) "one item" 1 (List.length items);
  match (List.hd items).Metrics.item_view with
  | Metrics.Histogram_view h ->
      Alcotest.(check int) "count" 5 h.Metrics.h_count;
      Alcotest.(check (float 1e-9)) "sum" 106.5 h.Metrics.h_sum;
      Alcotest.(check (float 1e-9)) "min" 0.5 h.Metrics.h_min;
      Alcotest.(check (float 1e-9)) "max" 100.0 h.Metrics.h_max;
      Alcotest.(check int) "bucket counts cover every observation" 5
        (List.fold_left (fun acc (_, c) -> acc + c) 0 h.Metrics.h_buckets)
  | _ -> Alcotest.fail "expected a histogram view"

let metrics_reset () =
  let r = Metrics.create () in
  Flag.with_mode true @@ fun () ->
  Metrics.incr ~registry:r "a";
  Metrics.set_gauge ~registry:r "b" 1.0;
  Metrics.reset r;
  Alcotest.(check int) "empty after reset" 0 (Metrics.size ~registry:r ())

(* Bucket counts sum to the number of observations, whatever we throw at
   the log-scale bucketing. *)
let histogram_property =
  QCheck.Test.make ~name:"histogram buckets partition the observations" ~count:200
    QCheck.(list (int_range 0 10_000_000))
    (fun values ->
      Flag.with_mode true @@ fun () ->
      let r = Metrics.create () in
      List.iter (fun v -> Metrics.observe_int ~registry:r "h" v) values;
      match Metrics.snapshot ~registry:r () with
      | [] -> values = []
      | [ { Metrics.item_view = Metrics.Histogram_view h; _ } ] ->
          h.Metrics.h_count = List.length values
          && List.fold_left (fun acc (_, c) -> acc + c) 0 h.Metrics.h_buckets
             = List.length values
      | _ -> false)

(* Within-bucket linear interpolation makes histogram quantiles exact
   enough to assert: observations 1,2,3,4 land in log2 buckets
   (1,1),(2,1),(4,2), so p50 sits at the top of the (1,2] bucket and p99
   interpolates 98% into (2,4]. The old log-linear rule would give
   2·2^0.98 ≈ 3.945 for p99 — these checks pin the linear answer. *)
let quantile_exact_values () =
  let r = Metrics.create () in
  Flag.with_mode true @@ fun () ->
  List.iter (fun v -> Metrics.observe ~registry:r "q" v) [ 1.0; 2.0; 3.0; 4.0 ];
  match Metrics.snapshot ~registry:r () with
  | [ { Metrics.item_view = Metrics.Histogram_view h; _ } ] ->
      Alcotest.(check (float 1e-9)) "p50" 2.0 (Metrics.histogram_quantile h 0.5);
      Alcotest.(check (float 1e-9)) "p99" 3.96 (Metrics.histogram_quantile h 0.99);
      Alcotest.(check (float 1e-9)) "p100 is the max" 4.0 (Metrics.histogram_quantile h 1.0);
      Alcotest.(check (float 1e-9)) "p0 clamps to the min" 1.0 (Metrics.histogram_quantile h 0.0)
  | _ -> Alcotest.fail "expected exactly one histogram"

let quantile_single_bucket () =
  let r = Metrics.create () in
  Flag.with_mode true @@ fun () ->
  (* Both observations share the (2,4] bucket: the median interpolates
     halfway up, and low quantiles clamp to the observed minimum. *)
  List.iter (fun v -> Metrics.observe ~registry:r "q" v) [ 3.0; 4.0 ];
  match Metrics.snapshot ~registry:r () with
  | [ { Metrics.item_view = Metrics.Histogram_view h; _ } ] ->
      Alcotest.(check (float 1e-9)) "p50 fills the bucket uniformly" 3.0
        (Metrics.histogram_quantile h 0.5);
      Alcotest.(check (float 1e-9)) "p1 clamps to the min" 3.0
        (Metrics.histogram_quantile h 0.01)
  | _ -> Alcotest.fail "expected exactly one histogram"

(* ------------------------------------------------------------------ *)
(* Span profiler                                                       *)
(* ------------------------------------------------------------------ *)

let with_fake_clock f =
  let fake = ref 0.0 in
  Span.set_clock (fun () -> !fake);
  Span.reset ();
  let finally () =
    Span.reset ();
    Span.set_clock (fun () -> Unix.gettimeofday ())
  in
  Fun.protect ~finally (fun () -> f fake)

let span_nesting () =
  with_fake_clock @@ fun fake ->
  Flag.with_mode true @@ fun () ->
  Span.enter "outer";
  fake := 1.0;
  Span.enter "inner";
  Alcotest.(check int) "two open spans" 2 (Span.depth ());
  fake := 3.0;
  Span.leave "inner";
  fake := 6.0;
  Span.leave "outer";
  Alcotest.(check int) "all closed" 0 (Span.depth ());
  (match Span.find "inner" with
  | Some s ->
      Alcotest.(check int) "inner count" 1 s.Span.count;
      Alcotest.(check (float 1e-9)) "inner total" 2.0 s.Span.total
  | None -> Alcotest.fail "inner span not recorded");
  match Span.find "outer" with
  | Some s -> Alcotest.(check (float 1e-9)) "outer total includes inner" 6.0 s.Span.total
  | None -> Alcotest.fail "outer span not recorded"

let span_mismatch () =
  with_fake_clock @@ fun _fake ->
  Flag.with_mode true @@ fun () ->
  Span.enter "a";
  match Span.leave "b" with
  | () -> Alcotest.fail "mismatched leave must raise"
  | exception Invalid_argument _ -> ()

let span_percentiles () =
  with_fake_clock @@ fun fake ->
  Flag.with_mode true @@ fun () ->
  for i = 1 to 100 do
    let start = !fake in
    Span.time "work" (fun () -> fake := start +. float_of_int i)
  done;
  match Span.find "work" with
  | None -> Alcotest.fail "span not recorded"
  | Some s ->
      Alcotest.(check int) "count" 100 s.Span.count;
      Alcotest.(check (float 1e-6)) "total" 5050.0 s.Span.total;
      Alcotest.(check (float 1e-6)) "min" 1.0 s.Span.min_s;
      Alcotest.(check (float 1e-6)) "max" 100.0 s.Span.max_s;
      Alcotest.(check bool) "p50 in the middle" true (s.Span.p50 >= 45.0 && s.Span.p50 <= 55.0);
      Alcotest.(check bool) "p99 near the top" true (s.Span.p99 >= 95.0 && s.Span.p99 <= 100.0);
      Alcotest.(check bool) "p50 below p99" true (s.Span.p50 < s.Span.p99)

let span_time_propagates () =
  with_fake_clock @@ fun _fake ->
  Flag.with_mode true @@ fun () ->
  Alcotest.(check int) "returns the body's value" 41 (Span.time "ret" (fun () -> 41));
  (match Span.time "boom" (fun () -> failwith "inner") with
  | _ -> Alcotest.fail "exception must propagate"
  | exception Failure m -> Alcotest.(check string) "original exception" "inner" m);
  Alcotest.(check int) "stack unwound after the exception" 0 (Span.depth ())

(* ------------------------------------------------------------------ *)
(* Event sink                                                          *)
(* ------------------------------------------------------------------ *)

let events_jsonl () =
  Flag.with_mode true @@ fun () ->
  Events.reset ();
  Events.set_sampling ~every:1;
  let (), out =
    Events.with_buffer (fun () ->
        Events.emit ~kind:"test"
          [ ("msg", Json.String "quote\" back\\slash\nnewline\ttab \x01 control") ];
        Events.emit ~time:1.25 ~kind:"test"
          [ ("n", Json.Int 42); ("x", Json.Float 0.5); ("flag", Json.Bool true) ])
  in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' out) in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Json.Obj fields ->
          Alcotest.(check bool) "kind field present" true (List.mem_assoc "kind" fields)
      | _ -> Alcotest.fail "event line is not an object"
      | exception Json.Parse_error m -> Alcotest.fail ("malformed JSONL line: " ^ m))
    lines;
  (* The tricky string survives a round trip through the encoder+parser. *)
  match Json.member "msg" (Json.parse (List.hd lines)) with
  | Some (Json.String s) ->
      Alcotest.(check string) "string round trip"
        "quote\" back\\slash\nnewline\ttab \x01 control" s
  | _ -> Alcotest.fail "msg field lost"

let events_sampling () =
  Flag.with_mode true @@ fun () ->
  Events.reset ();
  Events.set_sampling ~every:3;
  let finally () = Events.set_sampling ~every:1 in
  Fun.protect ~finally @@ fun () ->
  let (), out =
    Events.with_buffer (fun () ->
        for i = 1 to 7 do
          Events.emit ~kind:"tick" [ ("i", Json.Int i) ]
        done)
  in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' out) in
  Alcotest.(check int) "1st, 4th and 7th kept" 3 (List.length lines);
  Alcotest.(check int) "emitted counter" 3 (Events.emitted ());
  Alcotest.(check int) "suppressed counter" 4 (Events.suppressed ());
  let kept =
    List.map
      (fun line ->
        match Json.member "i" (Json.parse line) with Some (Json.Int i) -> i | _ -> -1)
      lines
  in
  Alcotest.(check (list int)) "deterministic choice" [ 1; 4; 7 ] kept

(* FTR_OBS_SINK=<path> redirects the JSONL stream to a file when no
   programmatic sink is installed; [with_buffer] (and any [set_sink])
   takes precedence while active. Must run before any test that installs
   a sink via [set_sink], because an explicit installation permanently
   outranks the env redirect. *)
let events_env_sink () =
  Flag.with_mode true @@ fun () ->
  Events.reset ();
  Events.set_sampling ~every:1;
  let path = Filename.temp_file "ftr_obs_sink" ".jsonl" in
  Unix.putenv "FTR_OBS_SINK" path;
  let finally () = Unix.putenv "FTR_OBS_SINK" "" in
  Fun.protect ~finally @@ fun () ->
  Events.emit ~kind:"env_redirect" [ ("n", Json.Int 1) ];
  Events.emit ~kind:"env_redirect" [ ("n", Json.Int 2) ];
  (* A buffer sink installed mid-stream wins over the env redirect... *)
  let (), buffered =
    Events.with_buffer (fun () -> Events.emit ~kind:"env_redirect" [ ("n", Json.Int 3) ])
  in
  (* ...and the env sink takes back over once it is gone. *)
  Events.emit ~kind:"env_redirect" [ ("n", Json.Int 4) ];
  Events.flush_sink ();
  let lines =
    List.filter (fun l -> l <> "") (In_channel.with_open_text path In_channel.input_lines)
  in
  Sys.remove path;
  Alcotest.(check int) "env file got the unbuffered events" 3 (List.length lines);
  let ns =
    List.map
      (fun line ->
        match Json.member "n" (Json.parse line) with Some (Json.Int i) -> i | _ -> -1)
      lines
  in
  Alcotest.(check (list int)) "buffered event bypassed the file" [ 1; 2; 4 ] ns;
  match Json.member "n" (Json.parse (String.trim buffered)) with
  | Some (Json.Int 3) -> ()
  | _ -> Alcotest.fail "with_buffer did not capture the bracketed event"

(* The exit hook entry points install: a programmatic channel sink gets
   its tail flushed by the same [flush_sink] the hook runs, and the hook
   installs exactly once however often it is requested. The at_exit
   behaviour itself can't be observed inside the test process, so the
   test drives [flush_sink] directly — the hook is just [at_exit] around
   it. *)
let events_exit_flush () =
  Flag.with_mode true @@ fun () ->
  Events.reset ();
  Events.set_sampling ~every:1;
  let path = Filename.temp_file "ftr_obs_exitflush" ".jsonl" in
  let oc = open_out path in
  Events.set_sink (Some (Events.To_channel oc));
  let finally () =
    Events.set_sink None;
    close_out_noerr oc;
    Sys.remove path
  in
  Fun.protect ~finally @@ fun () ->
  Events.install_exit_flush ();
  Events.install_exit_flush ();
  (* idempotent: still one hook *)
  Events.emit ~kind:"exit_flush" [ ("n", Json.Int 1) ];
  Events.emit ~kind:"exit_flush" [ ("n", Json.Int 2) ];
  Events.flush_sink ();
  let lines =
    List.filter (fun l -> l <> "") (In_channel.with_open_text path In_channel.input_lines)
  in
  Alcotest.(check int) "both events on disk after the flush" 2 (List.length lines)

let events_off_without_sink () =
  Flag.with_mode true @@ fun () ->
  Events.reset ();
  Events.set_sink None;
  Events.emit ~kind:"void" [];
  Alcotest.(check int) "nothing emitted without a sink" 0 (Events.emitted ())

(* ------------------------------------------------------------------ *)
(* Disabled-overhead smoke check                                       *)
(* ------------------------------------------------------------------ *)

let disabled_overhead () =
  Flag.with_mode false @@ fun () ->
  Metrics.reset Metrics.default;
  Span.reset ();
  (* The guard itself must not allocate: a loop of flag checks moves the
     minor allocation pointer by (about) nothing. *)
  let before = Gc.minor_words () in
  for _ = 1 to 50_000 do
    if Flag.enabled () then Metrics.incr "never";
    Span.enter "never";
    Span.leave "never"
  done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "guarded loop allocates nothing (%.0f minor words)" delta)
    true (delta < 256.0);
  (* Instrumented hot paths leave no trace in the registries when off. *)
  let rng = Rng.of_int 7 in
  let net = Network.build_ideal ~n:256 ~links:4 rng in
  for _ = 1 to 32 do
    ignore
      (Route.route ~strategy:(Route.Backtrack { history = 5 }) ~rng net ~src:(Rng.int rng 256)
         ~dst:(Rng.int rng 256))
  done;
  Alcotest.(check int) "metrics registry untouched" 0 (Metrics.size ());
  Alcotest.(check (list string)) "no spans recorded" []
    (List.map (fun s -> s.Span.span_name) (Span.stats ()))

(* ------------------------------------------------------------------ *)
(* Instrumentation end to end                                          *)
(* ------------------------------------------------------------------ *)

let route_instrumentation () =
  Flag.with_mode true @@ fun () ->
  Metrics.reset Metrics.default;
  Span.reset ();
  Events.reset ();
  let rng = Rng.of_int 11 in
  let (), out =
    Events.with_buffer (fun () ->
        let net = Network.build_ideal ~n:256 ~links:4 rng in
        for _ = 1 to 20 do
          let src = Rng.int rng 256 and dst = Rng.int rng 256 in
          if src <> dst then ignore (Route.route ~rng net ~src ~dst)
        done)
  in
  let hops_count =
    List.fold_left
      (fun acc it ->
        match it.Metrics.item_view with
        | Metrics.Histogram_view h when it.Metrics.item_name = "route_hops" ->
            acc + h.Metrics.h_count
        | _ -> acc)
      0 (Metrics.snapshot ())
  in
  Alcotest.(check bool) "route_hops recorded" true (hops_count > 0);
  Alcotest.(check bool) "network build span recorded" true
    (Span.find "network.build_ideal" <> None);
  List.iter
    (fun line ->
      match Json.parse line with
      | Json.Obj _ -> ()
      | _ -> Alcotest.fail "event line is not an object")
    (List.filter (fun l -> l <> "") (String.split_on_char '\n' out))

let export_formats () =
  Flag.with_mode true @@ fun () ->
  let r = Metrics.create () in
  Metrics.incr ~registry:r ~labels:[ ("reason", "stuck") ] "fails";
  Metrics.set_gauge ~registry:r "depth" 3.0;
  Metrics.observe ~registry:r "lat" 2.5;
  let json = Export.json_snapshot ~registry:r () in
  (* The snapshot itself must be parseable by our own parser. *)
  (match Json.parse (Json.to_string json) with
  | Json.Obj fields ->
      List.iter
        (fun k -> Alcotest.(check bool) (k ^ " key present") true (List.mem_assoc k fields))
        [ "counters"; "gauges"; "histograms"; "spans" ]
  | _ -> Alcotest.fail "snapshot is not an object");
  let prom = Export.prometheus ~registry:r () in
  Alcotest.(check bool) "prometheus has type lines" true
    (String.length prom > 0
    && List.exists
         (fun l -> String.length l >= 6 && String.sub l 0 6 = "# TYPE")
         (String.split_on_char '\n' prom));
  let text = Export.text_report ~registry:r () in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "text report mentions the counter" true
    (contains text "fails{reason=\"stuck\"}")

(* ------------------------------------------------------------------ *)
(* Route flight recorder                                               *)
(* ------------------------------------------------------------------ *)

module Tracing = Ftr_obs.Tracing

(* Recorder state is global; every test restores the defaults on the way
   out so later tests (and the default-on contract) see a clean slate. *)
let with_recorder f =
  Flag.with_mode true @@ fun () ->
  Tracing.reset ();
  Tracing.set_seed 42;
  Tracing.set_recording true;
  let finally () =
    Tracing.set_recording true;
    Tracing.force_full false;
    Tracing.set_sampling ~every:1;
    Tracing.set_capacity ~ring:32 ~pinned:16 ~steps:4096 ();
    Tracing.reset ()
  in
  Fun.protect ~finally f

let tracing_null_noop () =
  Flag.with_mode false @@ fun () ->
  Tracing.reset ();
  let tr = Tracing.begin_route ~src:1 ~dst:2 in
  Alcotest.(check bool) "not live with the flag off" false (Tracing.is_live tr);
  Tracing.hop tr ~node:3;
  Tracing.candidate tr ~cur:1 ~cand:3 ~dist:4 Tracing.Chosen;
  Tracing.backtrack tr ~from_node:3 ~to_node:1;
  Tracing.finish tr ~delivered:false ~hops:1 ~stuck_at:3 ~reason:"no_live_neighbor";
  Alcotest.(check int) "nothing retained" 0 (Tracing.retained_count ());
  Alcotest.(check int) "nothing completed" 0 (Tracing.completed ());
  Alcotest.(check int) "null holds no steps" 0 (Tracing.step_count tr)

let tracing_bounds () =
  with_recorder @@ fun () ->
  Tracing.force_full true;
  Tracing.set_capacity ~ring:4 ~pinned:2 ~steps:8 ();
  for i = 0 to 9 do
    let tr = Tracing.begin_route ~src:i ~dst:(i + 100) in
    Alcotest.(check bool) "live while recording" true (Tracing.is_live tr);
    for h = 1 to 20 do
      Tracing.hop tr ~node:h
    done;
    let delivered = i mod 2 = 0 in
    Tracing.finish tr ~delivered ~hops:20
      ~stuck_at:(if delivered then -1 else i)
      ~reason:(if delivered then "" else "no_live_neighbor")
  done;
  Alcotest.(check int) "ring bounded" 4 (Tracing.retained_count ());
  Alcotest.(check int) "pins bounded" 2 (Tracing.pinned_count ());
  Alcotest.(check int) "all completions counted" 10 (Tracing.completed ());
  Alcotest.(check int) "evictions counted" 6 (Tracing.evicted ());
  List.iter
    (fun tr ->
      Alcotest.(check int) "steps capped" 8 (Tracing.step_count tr);
      Alcotest.(check int) "drops counted" 12 (Tracing.dropped_steps tr))
    (Tracing.retained_traces ());
  (* Pins keep only failed routes; the ring keeps the newest of both. *)
  List.iter
    (fun tr ->
      match Json.member "status" (Tracing.to_json tr) with
      | Some (Json.String "failed") -> ()
      | _ -> Alcotest.fail "a pinned trace was not a failure")
    (Tracing.pinned_traces ())

let tracing_ids_and_sampling_deterministic () =
  with_recorder @@ fun () ->
  Tracing.set_sampling ~every:3;
  let fidelity_run () =
    Tracing.reset ();
    Tracing.set_seed 7;
    List.init 24 (fun i ->
        let tr = Tracing.begin_route ~src:i ~dst:(i + 1) in
        let id = Tracing.id_hex tr in
        Tracing.finish tr ~delivered:true ~hops:1 ~stuck_at:(-1) ~reason:"";
        match Json.member "full" (Tracing.to_json tr) with
        | Some (Json.Bool full) -> (id, full)
        | _ -> Alcotest.fail "trace json lacks a full field")
  in
  let a = fidelity_run () in
  let b = fidelity_run () in
  Alcotest.(check bool) "ids and sampling identical across runs" true (a = b);
  Alcotest.(check bool) "sampling keeps some traces full" true
    (List.exists (fun (_, full) -> full) a);
  Alcotest.(check bool) "sampling thins some traces to hops-only" true
    (List.exists (fun (_, full) -> not full) a)

(* The explain workflow in miniature: warmup routes replay through the
   pool with recording off, then route K records at full fidelity. The
   rendered trace, its Events replay and its Chrome export must be byte-
   identical whatever the worker count — including the sequential
   fallback — because trace identity is (seed, index) and workers
   suppress telemetry. *)
let trace_bytes ~seed ?jobs () =
  Flag.with_mode true @@ fun () ->
  Tracing.reset ();
  Tracing.set_seed seed;
  Tracing.set_recording true;
  Tracing.force_full true;
  let finally () =
    Tracing.set_recording true;
    Tracing.force_full false;
    Tracing.reset ()
  in
  Fun.protect ~finally @@ fun () ->
  let n = 256 in
  let rng = Rng.of_int seed in
  let net = Network.build_ideal ~n ~links:4 rng in
  let mask = Ftr_core.Failure.random_node_fraction rng ~n ~fraction:0.3 in
  let failures = Ftr_core.Failure.of_node_mask mask in
  let alive v = Ftr_graph.Bitset.get mask v in
  let route_one index =
    let rng = Ftr_exec.Seed.rng_for ~seed ~index in
    let rec pick () =
      let src = Rng.int rng n and dst = Rng.int rng n in
      if src <> dst && alive src && alive dst then (src, dst) else pick ()
    in
    let src, dst = pick () in
    ignore (Route.route ~failures ~strategy:(Route.Backtrack { history = 5 }) ~rng net ~src ~dst)
  in
  let (), _ =
    Events.with_buffer @@ fun () ->
    Tracing.set_recording false;
    ignore (Ftr_exec.Pool.map ?jobs ~count:5 (fun i -> route_one i));
    Tracing.set_recording true;
    Tracing.set_next_index 5;
    route_one 5
  in
  match Tracing.latest () with
  | None -> Alcotest.fail "no trace recorded"
  | Some tr ->
      Events.reset ();
      Events.set_sampling ~every:1;
      let (), jsonl = Events.with_buffer (fun () -> Tracing.emit_events tr) in
      Tracing.render tr ^ "\x00" ^ jsonl ^ "\x00" ^ Tracing.chrome_trace_string ~traces:[ tr ] ()

let tracing_jobs_invariant =
  QCheck.Test.make ~name:"trace bytes invariant across jobs and FTR_EXEC_SEQ" ~count:6
    QCheck.(int_range 0 1_000)
    (fun seed ->
      let reference = trace_bytes ~seed ~jobs:1 () in
      let sequential f =
        let saved = Sys.getenv_opt "FTR_EXEC_SEQ" in
        Unix.putenv "FTR_EXEC_SEQ" "1";
        let finally () = Unix.putenv "FTR_EXEC_SEQ" (Option.value saved ~default:"0") in
        Fun.protect ~finally f
      in
      String.equal reference (trace_bytes ~seed ~jobs:2 ())
      && String.equal reference (trace_bytes ~seed ~jobs:4 ())
      && String.equal reference (sequential (fun () -> trace_bytes ~seed ())))

(* With telemetry off entirely, a route across the whole 2^16-node line —
   65535 hops through the tracing-instrumented router — must stay inside
   the same minor-words budget the CSR tests enforce: the recorder costs
   one dead branch per hop, not an allocation. *)
let tracing_off_allocation_free () =
  Flag.with_mode false @@ fun () ->
  let n = 1 lsl 16 in
  let net = Network.build_ideal ~n ~links:0 (Rng.of_int 5) in
  let scratch = Route.scratch net in
  ignore (Route.route ~scratch net ~src:0 ~dst:1);
  let before = Gc.minor_words () in
  ignore (Route.route ~scratch net ~src:0 ~dst:(n - 1));
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "a %d-hop route with tracing off allocates nothing (%.0f minor words)"
       (n - 1) delta)
    true (delta < 512.0)

(* ------------------------------------------------------------------ *)
(* Trace drop accounting and JSON (satellite)                          *)
(* ------------------------------------------------------------------ *)

module Trace = Ftr_sim.Trace

let trace_drop_counts () =
  let t = Trace.create ~capacity:2 ~min_level:Trace.Info () in
  Trace.debugf t ~time:0.5 "below level";
  Trace.infof t ~time:1.0 "one";
  Trace.infof t ~time:2.0 "two";
  (* Overflow sheds down to capacity/2 (amortised batch eviction), so the
     third entry evicts two and one survives. *)
  Trace.infof t ~time:3.0 "three";
  Alcotest.(check int) "below level" 1 (Trace.dropped_below_level t);
  Alcotest.(check int) "evicted" 2 (Trace.dropped_by_eviction t);
  Alcotest.(check int) "total dropped" 3 (Trace.dropped t);
  Alcotest.(check int) "retained" 1 (Trace.length t);
  match Trace.entries t with
  | [ e ] -> Alcotest.(check string) "newest survives" "three" e.Trace.message
  | _ -> Alcotest.fail "expected exactly one retained entry"

let trace_to_json () =
  let t = Trace.create ~capacity:4 () in
  Trace.infof t ~time:1.0 "hello %d" 42;
  Trace.warnf t ~time:2.0 "tricky \"quote\"";
  let j = Trace.to_json t in
  match Json.parse (Json.to_string j) with
  | Json.Obj _ as parsed -> (
      (match Json.member "retained" parsed with
      | Some (Json.Int 2) -> ()
      | _ -> Alcotest.fail "retained count wrong");
      match Json.member "entries" parsed with
      | Some (Json.List [ _; second ]) -> (
          match Json.member "message" second with
          | Some (Json.String m) -> Alcotest.(check string) "message survives" "tricky \"quote\"" m
          | _ -> Alcotest.fail "entry message missing")
      | _ -> Alcotest.fail "entries list wrong")
  | _ -> Alcotest.fail "trace json is not an object"

let trace_emit_events () =
  Flag.with_mode true @@ fun () ->
  Events.reset ();
  Events.set_sampling ~every:1;
  let t = Trace.create () in
  Trace.infof t ~time:1.0 "replayed";
  let (), out = Events.with_buffer (fun () -> Trace.emit_events t) in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' out) in
  Alcotest.(check int) "one event per entry" 1 (List.length lines);
  match Json.member "kind" (Json.parse (List.hd lines)) with
  | Some (Json.String "trace") -> ()
  | _ -> Alcotest.fail "default kind wrong"

(* ------------------------------------------------------------------ *)
(* JSON parser                                                         *)
(* ------------------------------------------------------------------ *)

let json_round_trip =
  let rec normalise = function
    | Json.List l -> Json.List (List.map normalise l)
    | Json.Obj l -> Json.Obj (List.map (fun (k, v) -> (k, normalise v)) l)
    | v -> v
  in
  QCheck.Test.make ~name:"json int/string round trip" ~count:300
    QCheck.(pair (list small_int) (list printable_string))
    (fun (ints, strings) ->
      let v =
        Json.Obj
          [
            ("ints", Json.List (List.map (fun i -> Json.Int i) ints));
            ("strings", Json.List (List.map (fun s -> Json.String s) strings));
          ]
      in
      normalise (Json.parse (Json.to_string v)) = normalise v)

let json_rejects () =
  List.iter
    (fun s ->
      match Json.parse_opt s with
      | None -> ()
      | Some _ -> Alcotest.fail (Printf.sprintf "parser accepted %S" s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}" ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          quick "counters" metrics_counters;
          quick "labelled series" metrics_labels;
          quick "gauges" metrics_gauges;
          quick "kind clash rejected" metrics_kind_clash;
          quick "histogram views" metrics_histogram;
          quick "reset" metrics_reset;
          quick "quantile exact values" quantile_exact_values;
          quick "quantile single bucket" quantile_single_bucket;
          QCheck_alcotest.to_alcotest histogram_property;
        ] );
      ( "span",
        [
          quick "nesting" span_nesting;
          quick "mismatched leave" span_mismatch;
          quick "percentiles" span_percentiles;
          quick "time returns and unwinds" span_time_propagates;
        ] );
      ( "events",
        [
          quick "jsonl well-formed" events_jsonl;
          quick "deterministic sampling" events_sampling;
          (* must precede any set_sink: an explicit installation
             permanently outranks the FTR_OBS_SINK redirect *)
          quick "env sink redirect and precedence" events_env_sink;
          quick "exit hook flushes programmatic channel sinks" events_exit_flush;
          quick "silent without sink" events_off_without_sink;
        ] );
      ( "overhead",
        [ quick "disabled paths do not allocate or record" disabled_overhead ] );
      ( "tracing",
        [
          quick "null trace is a no-op" tracing_null_noop;
          quick "ring, pin and step bounds" tracing_bounds;
          quick "ids and sampling deterministic" tracing_ids_and_sampling_deterministic;
          QCheck_alcotest.to_alcotest tracing_jobs_invariant;
          quick "tracing off allocates nothing" tracing_off_allocation_free;
        ] );
      ( "integration",
        [
          quick "route feeds metrics, spans and events" route_instrumentation;
          quick "export formats" export_formats;
        ] );
      ( "trace",
        [
          quick "drop accounting" trace_drop_counts;
          quick "to_json" trace_to_json;
          quick "emit_events" trace_emit_events;
        ] );
      ( "json",
        [ json_rejects |> quick "parser rejects malformed"; QCheck_alcotest.to_alcotest json_round_trip ] );
    ]
