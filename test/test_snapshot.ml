(* ftr-lint: disable-file T3 test assertions compare small concrete values *)
(* Snapshot persistence: round-trip fidelity and corrupted-file refusal.

   The format is a fixed 64-byte header plus three native-int32 sections
   (positions, offsets, targets); fidelity means the loaded network is
   byte-identical to the saved one — Bigarray equality on every vector,
   plus identical route outcomes as the behavioural witness. Refusal
   means every malformed file raises [Snapshot.Corrupt] with a message,
   never a crash, a silent truncation, or an unrelated exception. *)

module Network = Ftr_core.Network
module Route = Ftr_core.Route
module Snapshot = Ftr_core.Snapshot
module Csr = Ftr_graph.Adjacency.Csr
module I32 = Ftr_graph.Adjacency.I32
module Rng = Ftr_prng.Rng

let build ?(n = 384) ?(links = 4) ?(seed = 0xBEE) () =
  Network.build_ideal ~n ~links (Rng.of_int seed)

let with_snapshot net f =
  let path = Filename.temp_file "ftr_test" ".ftrsnap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Snapshot.save net ~path;
      f path)

let same_network a b =
  Network.geometry a = Network.geometry b
  && Network.line_size a = Network.line_size b
  && Network.links a = Network.links b
  && I32.equal (Network.positions a) (Network.positions b)
  && Csr.equal (Network.csr a) (Network.csr b)

let check_routes_agree original loaded =
  let n = Network.size original in
  for i = 0 to 15 do
    let src = i * 53 mod n and dst = i * 17 mod n in
    Alcotest.(check bool)
      (Printf.sprintf "route %d->%d agrees" src dst)
      true
      (Route.route original ~src ~dst = Route.route loaded ~src ~dst)
  done

let roundtrip_mmap () =
  let net = build () in
  with_snapshot net @@ fun path ->
  let loaded = Snapshot.load ~path () in
  Alcotest.(check bool) "mmap load byte-identical" true (same_network net loaded);
  check_routes_agree net loaded

let roundtrip_copy () =
  let net = build () in
  with_snapshot net @@ fun path ->
  let loaded = Snapshot.load ~mmap:false ~path () in
  Alcotest.(check bool) "copy load byte-identical" true (same_network net loaded);
  check_routes_agree net loaded

let roundtrip_no_validate () =
  (* validate:false skips the full structural sweep but keeps the frame
     checks; a well-formed file must load identically either way. *)
  let net = build () in
  with_snapshot net @@ fun path ->
  let loaded = Snapshot.load ~validate:false ~path () in
  Alcotest.(check bool) "unvalidated load byte-identical" true (same_network net loaded)

let info_fields () =
  let net = build ~n:200 ~links:3 () in
  with_snapshot net @@ fun path ->
  let i = Snapshot.info ~path in
  Alcotest.(check int) "version" Snapshot.format_version i.Snapshot.version;
  Alcotest.(check int) "nodes" 200 i.Snapshot.nodes;
  Alcotest.(check int) "line_size" (Network.line_size net) i.Snapshot.line_size;
  Alcotest.(check int) "links" 3 i.Snapshot.links;
  Alcotest.(check int) "edges" (Csr.edge_count (Network.csr net)) i.Snapshot.edges;
  Alcotest.(check int)
    "file_bytes matches the file" (Unix.stat path).Unix.st_size i.Snapshot.file_bytes

(* ------------------------------------------------------------------ *)
(* Corrupted-file matrix                                               *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let set_int32 s off v =
  let b = Bytes.of_string s in
  Bytes.set_int32_ne b off v;
  Bytes.to_string b

(* Each row: a label and a mutation of a pristine snapshot's bytes. Both
   [load] and [info] must refuse the mutant with [Snapshot.Corrupt] —
   except payload-only damage, which only [load] can see. *)
let corruptions =
  [
    ("empty file", true, fun _ -> "");
    ("truncated header", true, fun s -> String.sub s 0 40);
    ("truncated payload", true, fun s -> String.sub s 0 (String.length s - 8));
    ("trailing garbage", true, fun s -> s ^ "junk");
    ("bad magic", true, fun s -> "X" ^ String.sub s 1 (String.length s - 1));
    ("wrong version", true, fun s -> set_int32 s 12 99l);
    ("foreign endianness", true, fun s -> set_int32 s 8 0x0D0C0B0Al);
    ( "out-of-range target",
      false,
      fun s -> set_int32 s (String.length s - 4) Int32.max_int );
  ]

let rejects_corrupt () =
  let net = build () in
  with_snapshot net @@ fun path ->
  let pristine = read_file path in
  let mutant = Filename.temp_file "ftr_test_bad" ".ftrsnap" in
  Fun.protect ~finally:(fun () -> try Sys.remove mutant with Sys_error _ -> ())
  @@ fun () ->
  List.iter
    (fun (label, info_too, mutate) ->
      write_file mutant (mutate pristine);
      let expect_corrupt what f =
        match f () with
        | _ -> Alcotest.failf "%s: %s accepted a corrupt file" label what
        | exception Snapshot.Corrupt _ -> ()
        | exception e ->
            Alcotest.failf "%s: %s raised %s, wanted Corrupt" label what
              (Printexc.to_string e)
      in
      expect_corrupt "load" (fun () -> Snapshot.load ~path:mutant ());
      if info_too then expect_corrupt "info" (fun () -> Snapshot.info ~path:mutant))
    corruptions

let missing_file () =
  (* A nonexistent path is an I/O error, not a corruption — it must
     surface as Unix_error (ENOENT), untranslated. *)
  match Snapshot.load ~path:"/nonexistent/ftr.ftrsnap" () with
  | _ -> Alcotest.fail "load of a missing file succeeded"
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | exception e -> Alcotest.failf "wanted ENOENT, got %s" (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip =
  QCheck.Test.make ~name:"save/load round-trips any ideal network" ~count:20
    QCheck.(triple (int_range 2 160) (int_range 0 6) small_int)
    (fun (n, links, seed) ->
      let net = Network.build_ideal ~n ~links (Rng.of_int seed) in
      with_snapshot net @@ fun path ->
      same_network net (Snapshot.load ~path ())
      && same_network net (Snapshot.load ~mmap:false ~path ()))

let () =
  Alcotest.run "snapshot"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "mmap load" `Quick roundtrip_mmap;
          Alcotest.test_case "copy load" `Quick roundtrip_copy;
          Alcotest.test_case "load without validation" `Quick roundtrip_no_validate;
          Alcotest.test_case "info fields" `Quick info_fields;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "corrupted files are refused" `Quick rejects_corrupt;
          Alcotest.test_case "missing file is ENOENT" `Quick missing_file;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]
