(* ftr-lint: disable-file T3 test assertions compare small concrete values *)
module Network = Ftr_core.Network
module Rng = Ftr_prng.Rng
module Sample = Ftr_prng.Sample

let rng () = Rng.of_int 12345

(* ------------------------------------------------------------------ *)
(* Ideal builder                                                       *)
(* ------------------------------------------------------------------ *)

let ideal_shape () =
  let net = Network.build_ideal ~n:256 ~links:4 (rng ()) in
  Alcotest.(check int) "size" 256 (Network.size net);
  Alcotest.(check int) "line size" 256 (Network.line_size net);
  Alcotest.(check int) "links" 4 (Network.links net);
  Alcotest.(check bool) "full" true (Network.is_full net)

let ideal_degrees () =
  let n = 256 and links = 4 in
  let net = Network.build_ideal ~n ~links (rng ()) in
  for u = 0 to n - 1 do
    let expected = links + (if u = 0 || u = n - 1 then 1 else 2) in
    Alcotest.(check int) (Printf.sprintf "degree of %d" u) expected
      (Array.length (Network.neighbors net u))
  done

let ideal_has_immediate_neighbors () =
  let n = 128 in
  let net = Network.build_ideal ~n ~links:2 (rng ()) in
  for u = 0 to n - 1 do
    let ns = Network.neighbors net u in
    if u > 0 then
      Alcotest.(check bool) "left neighbour present" true (Array.mem (u - 1) ns);
    if u < n - 1 then
      Alcotest.(check bool) "right neighbour present" true (Array.mem (u + 1) ns)
  done

let ideal_neighbors_sorted_and_valid () =
  let n = 200 in
  let net = Network.build_ideal ~n ~links:5 (rng ()) in
  for u = 0 to n - 1 do
    let ns = Network.neighbors net u in
    Array.iteri
      (fun i v ->
        Alcotest.(check bool) "in range" true (v >= 0 && v < n);
        Alcotest.(check bool) "no self-loop" true (v <> u);
        if i > 0 then Alcotest.(check bool) "sorted" true (ns.(i - 1) <= v))
      ns
  done

let ideal_link_lengths_follow_harmonic () =
  (* Aggregate length pmf should be close to 1/d/H over short lengths. *)
  let n = 1024 and links = 8 in
  let net = Network.build_ideal ~n ~links (rng ()) in
  let lengths = Network.long_link_lengths net in
  let total = List.length lengths in
  Alcotest.(check int) "number of long links" (n * links) total;
  let count_len d = List.length (List.filter (fun x -> x = d) lengths) in
  let h = Ftr_stats.Harmonic.number (n - 1) in
  List.iter
    (fun d ->
      let expected = 1.0 /. (float_of_int d *. h) in
      let rate = float_of_int (count_len d) /. float_of_int total in
      Alcotest.(check bool)
        (Printf.sprintf "length %d rate %.4f vs %.4f" d rate expected)
        true
        (abs_float (rate -. expected) < 0.02))
    [ 1; 2; 4; 8 ]

let ideal_deterministic_by_seed () =
  let a = Network.build_ideal ~n:64 ~links:3 (Rng.of_int 9) in
  let b = Network.build_ideal ~n:64 ~links:3 (Rng.of_int 9) in
  for u = 0 to 63 do
    Alcotest.(check (array int)) "same network" (Network.neighbors a u) (Network.neighbors b u)
  done

let ideal_rejects () =
  Alcotest.check_raises "tiny" (Invalid_argument "Network.build_ideal: need at least two nodes")
    (fun () -> ignore (Network.build_ideal ~n:1 ~links:1 (rng ())))

let ideal_zero_links () =
  (* Pure chain: still routable by crawling. *)
  let net = Network.build_ideal ~n:16 ~links:0 (rng ()) in
  Alcotest.(check int) "interior degree" 2 (Array.length (Network.neighbors net 5))

let ideal_strongly_connected () =
  let net = Network.build_ideal ~n:64 ~links:2 (rng ()) in
  Alcotest.(check bool) "strongly connected" true
    (Ftr_graph.Bfs.is_strongly_connected (Network.to_adjacency net))

(* ------------------------------------------------------------------ *)
(* Deterministic (Theorem 14) builder                                  *)
(* ------------------------------------------------------------------ *)

let deterministic_exact_links () =
  (* base 2, n = 16: node 0 links to +1,+2,+4,+8 (and nothing negative). *)
  let net = Network.build_deterministic ~n:16 ~base:2 in
  Alcotest.(check (array int)) "node 0" [| 1; 2; 4; 8 |] (Network.neighbors net 0);
  (* node 5: ±1, ±2, ±4, ±8 → 1,3,4,6,7,9,13. *)
  Alcotest.(check (array int)) "node 5" [| 1; 3; 4; 6; 7; 9; 13 |] (Network.neighbors net 5)

let deterministic_base3 () =
  let net = Network.build_deterministic ~n:27 ~base:3 in
  (* node 0: j*3^i for j in {1,2}, i in {0,1,2}: 1,2,3,6,9,18. *)
  Alcotest.(check (array int)) "node 0 base 3" [| 1; 2; 3; 6; 9; 18 |] (Network.neighbors net 0)

let deterministic_symmetric_interior () =
  let net = Network.build_deterministic ~n:1024 ~base:2 in
  let mid = 512 in
  let ns = Network.neighbors net mid in
  Array.iter
    (fun v ->
      let d = abs (v - mid) in
      (* Every link length is a power of two. *)
      Alcotest.(check bool) (Printf.sprintf "length %d is 2^i" d) true (d land (d - 1) = 0))
    ns

let geometric_links () =
  let net = Network.build_geometric ~n:16 ~base:2 in
  Alcotest.(check (array int)) "node 0 geometric" [| 1; 2; 4; 8 |] (Network.neighbors net 0);
  Alcotest.(check (array int)) "node 8 geometric" [| 0; 4; 6; 7; 9; 10; 12 |]
    (Network.neighbors net 8)

(* ------------------------------------------------------------------ *)
(* Binomial (Theorem 17) builder                                       *)
(* ------------------------------------------------------------------ *)

let binomial_present_subset () =
  let n = 2048 in
  let net = Network.build_binomial ~n ~links:2 ~present_p:0.5 (rng ()) in
  let m = Network.size net in
  Alcotest.(check bool) "roughly half present" true
    (abs (m - (n / 2)) < n / 8);
  Alcotest.(check bool) "not full" true (not (Network.is_full net));
  (* Positions strictly increasing and on the line. *)
  for i = 1 to m - 1 do
    Alcotest.(check bool) "increasing" true (Network.position net i > Network.position net (i - 1))
  done

let binomial_links_present_only () =
  let net = Network.build_binomial ~n:512 ~links:3 ~present_p:0.3 (rng ()) in
  let m = Network.size net in
  for i = 0 to m - 1 do
    Array.iter
      (fun j -> Alcotest.(check bool) "neighbour is a node index" true (j >= 0 && j < m))
      (Network.neighbors net i)
  done

let binomial_immediate_are_adjacent_indices () =
  let net = Network.build_binomial ~n:512 ~links:1 ~present_p:0.4 (rng ()) in
  let m = Network.size net in
  for i = 0 to m - 1 do
    let ns = Network.neighbors net i in
    if i > 0 then Alcotest.(check bool) "prev present" true (Array.mem (i - 1) ns);
    if i < m - 1 then Alcotest.(check bool) "next present" true (Array.mem (i + 1) ns)
  done

let binomial_full_at_p1 () =
  let net = Network.build_binomial ~n:128 ~links:1 ~present_p:1.0 (rng ()) in
  Alcotest.(check int) "all present" 128 (Network.size net);
  Alcotest.(check bool) "full" true (Network.is_full net)

let binomial_rejects () =
  Alcotest.check_raises "bad p"
    (Invalid_argument "Network.build_binomial: present_p must be in (0,1]") (fun () ->
      ignore (Network.build_binomial ~n:16 ~links:1 ~present_p:0.0 (rng ())))

(* ------------------------------------------------------------------ *)
(* Ring (circle) builder                                               *)
(* ------------------------------------------------------------------ *)

let ring_shape () =
  let net = Network.build_ring ~n:256 ~links:4 (rng ()) in
  Alcotest.(check bool) "circle geometry" true (Network.geometry net = Network.Circle);
  Alcotest.(check int) "size" 256 (Network.size net);
  (* Every node, including 0 and n-1, has exactly two ring neighbours. *)
  for u = 0 to 255 do
    Alcotest.(check int) "degree" 6 (Array.length (Network.neighbors net u));
    let ns = Network.neighbors net u in
    Alcotest.(check bool) "clockwise neighbour" true (Array.mem ((u + 1) mod 256) ns);
    Alcotest.(check bool) "counter-clockwise neighbour" true (Array.mem ((u + 255) mod 256) ns)
  done

let ring_distance_wraps () =
  let net = Network.build_ring ~n:100 ~links:1 (rng ()) in
  Alcotest.(check int) "short way" 3 (Network.distance net 1 4);
  Alcotest.(check int) "wraps" 2 (Network.distance net 99 1);
  Alcotest.(check int) "clockwise" 3 (Network.clockwise_distance net ~src:1 ~dst:4);
  Alcotest.(check int) "clockwise around" 97 (Network.clockwise_distance net ~src:4 ~dst:1)

let ring_link_lengths_bounded () =
  let n = 512 in
  let net = Network.build_ring ~n ~links:6 (rng ()) in
  List.iter
    (fun d -> Alcotest.(check bool) "at most n/2" true (d >= 1 && d <= n / 2))
    (Network.long_link_lengths net)

let ring_link_lengths_follow_harmonic () =
  (* On the circle, Pr[arc length d] ~ 2/(d * normaliser) for d < n/2. *)
  let n = 1024 and links = 8 in
  let net = Network.build_ring ~n ~links (rng ()) in
  let lengths = Network.long_link_lengths net in
  let total = List.length lengths in
  Alcotest.(check int) "number of long links" (n * links) total;
  let norm = ref 0.0 in
  for d = 1 to n / 2 do
    norm := !norm +. ((if 2 * d = n then 1.0 else 2.0) /. float_of_int d)
  done;
  List.iter
    (fun d ->
      let expected = 2.0 /. (float_of_int d *. !norm) in
      let rate =
        float_of_int (List.length (List.filter (fun x -> x = d) lengths)) /. float_of_int total
      in
      Alcotest.(check bool)
        (Printf.sprintf "length %d rate %.4f vs %.4f" d rate expected)
        true
        (abs_float (rate -. expected) < 0.02))
    [ 1; 2; 4; 8 ]

let ring_line_distance_disagree () =
  let line = Network.build_ideal ~n:100 ~links:1 (rng ()) in
  let ring = Network.build_ring ~n:100 ~links:1 (rng ()) in
  Alcotest.(check int) "line end-to-end" 99 (Network.distance line 0 99);
  Alcotest.(check int) "ring end-to-end" 1 (Network.distance ring 0 99)

let ring_clockwise_rejected_on_line () =
  let net = Network.build_ideal ~n:16 ~links:1 (rng ()) in
  Alcotest.check_raises "no orientation"
    (Invalid_argument "Network.clockwise_distance: line networks have no orientation") (fun () ->
      ignore (Network.clockwise_distance net ~src:0 ~dst:1))

let ring_rejects () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Network.build_ring: need at least three nodes") (fun () ->
      ignore (Network.build_ring ~n:2 ~links:1 (rng ())))

(* ------------------------------------------------------------------ *)
(* Lookup helpers                                                      *)
(* ------------------------------------------------------------------ *)

let nearest_index_full () =
  let net = Network.build_ideal ~n:100 ~links:1 (rng ()) in
  Alcotest.(check int) "identity on full nets" 42 (Network.nearest_index net ~position:42)

let nearest_index_sparse () =
  let positions = [| 2; 10; 50 |] in
  let neighbors = [| [| 1 |]; [| 0; 2 |]; [| 1 |] |] in
  let net = Network.of_neighbor_indices ~line_size:64 ~positions ~neighbors ~links:0 () in
  Alcotest.(check int) "below first" 0 (Network.nearest_index net ~position:0);
  Alcotest.(check int) "nearest left wins ties" 0 (Network.nearest_index net ~position:6);
  Alcotest.(check int) "nearest right" 1 (Network.nearest_index net ~position:9);
  Alcotest.(check int) "above last" 2 (Network.nearest_index net ~position:63);
  Alcotest.(check (option int)) "exact hit" (Some 1) (Network.index_of_position net ~position:10);
  Alcotest.(check (option int)) "miss" None (Network.index_of_position net ~position:11)

let of_neighbor_indices_validates () =
  Alcotest.check_raises "unsorted positions"
    (Invalid_argument "Network.of_neighbor_indices: positions must be strictly increasing")
    (fun () ->
      ignore
        (Network.of_neighbor_indices ~line_size:10 ~positions:[| 5; 2 |]
           ~neighbors:[| [||]; [||] |] ~links:0 ()));
  Alcotest.check_raises "neighbour out of range"
    (Invalid_argument "Network.of_neighbor_indices: neighbor out of range") (fun () ->
      ignore
        (Network.of_neighbor_indices ~line_size:10 ~positions:[| 1; 2 |]
           ~neighbors:[| [| 7 |]; [||] |] ~links:0 ()))

let distance_via_positions () =
  let positions = [| 3; 9; 40 |] in
  let net =
    Network.of_neighbor_indices ~line_size:64 ~positions
      ~neighbors:[| [| 1 |]; [| 0; 2 |]; [| 1 |] |] ~links:0 ()
  in
  Alcotest.(check int) "line distance" 6 (Network.distance net 0 1);
  Alcotest.(check int) "line distance 2" 37 (Network.distance net 0 2)

let long_link_lengths_excludes_ring () =
  (* A 4-node full chain with no long links has no long lengths. *)
  let net = Network.build_ideal ~n:4 ~links:0 (rng ()) in
  Alcotest.(check (list int)) "no long links" [] (Network.long_link_lengths net)

(* ------------------------------------------------------------------ *)
(* sample_long_target                                                  *)
(* ------------------------------------------------------------------ *)

let sample_target_in_range () =
  let n = 100 in
  let pl = Sample.power_law ~exponent:1.0 ~max_length:(n - 1) in
  let r = rng () in
  for _ = 1 to 5000 do
    let src = Rng.int r n in
    let v = Network.sample_long_target pl r ~n ~src in
    Alcotest.(check bool) "on line" true (v >= 0 && v < n);
    Alcotest.(check bool) "not self" true (v <> src)
  done

let sample_target_edge_node_one_sided () =
  let n = 64 in
  let pl = Sample.power_law ~exponent:1.0 ~max_length:(n - 1) in
  let r = rng () in
  for _ = 1 to 1000 do
    let v = Network.sample_long_target pl r ~n ~src:0 in
    Alcotest.(check bool) "only rightward from 0" true (v > 0)
  done;
  for _ = 1 to 1000 do
    let v = Network.sample_long_target pl r ~n ~src:(n - 1) in
    Alcotest.(check bool) "only leftward from n-1" true (v < n - 1)
  done

let sample_target_side_balance () =
  (* The midpoint node should sample each side about half the time. *)
  let n = 101 in
  let pl = Sample.power_law ~exponent:1.0 ~max_length:(n - 1) in
  let r = rng () in
  let right = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Network.sample_long_target pl r ~n ~src:50 > 50 then incr right
  done;
  let rate = float_of_int !right /. float_of_int trials in
  Alcotest.(check bool) "balanced" true (abs_float (rate -. 0.5) < 0.02)

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

module Serial = Ftr_core.Serial

let networks_equal a b =
  Network.geometry a = Network.geometry b
  && Network.line_size a = Network.line_size b
  && Network.links a = Network.links b
  && Network.size a = Network.size b
  &&
  let ok = ref true in
  for i = 0 to Network.size a - 1 do
    if Network.position a i <> Network.position b i then ok := false;
    if Network.neighbors a i <> Network.neighbors b i then ok := false
  done;
  !ok

let serial_string_roundtrip () =
  let net = Network.build_ideal ~n:128 ~links:4 (rng ()) in
  let restored = Serial.of_string (Serial.to_string net) in
  Alcotest.(check bool) "identical" true (networks_equal net restored)

let serial_ring_roundtrip () =
  let net = Network.build_ring ~n:64 ~links:3 (rng ()) in
  let restored = Serial.of_string (Serial.to_string net) in
  Alcotest.(check bool) "circle preserved" true
    (Network.geometry restored = Network.Circle && networks_equal net restored)

let serial_sparse_roundtrip () =
  let net = Network.build_binomial ~n:256 ~links:2 ~present_p:0.5 (rng ()) in
  let restored = Serial.of_string (Serial.to_string net) in
  Alcotest.(check bool) "sparse positions preserved" true (networks_equal net restored)

let serial_file_roundtrip () =
  let net = Network.build_deterministic ~n:64 ~base:2 in
  let path = Filename.temp_file "ftrnet_test" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Serial.save_file net path;
      let restored = Serial.load_file path in
      Alcotest.(check bool) "file roundtrip" true (networks_equal net restored))

let serial_restored_routes_identically () =
  let net = Network.build_ideal ~n:512 ~links:6 (Rng.of_int 80) in
  let restored = Serial.of_string (Serial.to_string net) in
  let r1 = Rng.of_int 81 and r2 = Rng.of_int 81 in
  for _ = 1 to 100 do
    let src = Rng.int r1 512 and dst = Rng.int r1 512 in
    let src' = Rng.int r2 512 and dst' = Rng.int r2 512 in
    Alcotest.(check int) "same route cost"
      (Ftr_core.Route.hops (Ftr_core.Route.route net ~src ~dst))
      (Ftr_core.Route.hops (Ftr_core.Route.route restored ~src:src' ~dst:dst'))
  done

let serial_rejects_garbage () =
  let expect_parse_error s =
    match Serial.of_string s with
    | exception Serial.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected a parse error"
  in
  expect_parse_error "";
  expect_parse_error "nonsense 1\n";
  expect_parse_error "ftrnet 99\n";
  expect_parse_error "ftrnet 1\ngeometry spiral\n";
  (* Truncated node section. *)
  expect_parse_error "ftrnet 1\ngeometry line\nline_size 4\nlinks 0\nnodes 2\n0 1 1\n";
  (* Degree mismatch. *)
  expect_parse_error "ftrnet 1\ngeometry line\nline_size 4\nlinks 0\nnodes 1\n0 2 1\n"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_ideal_connected =
  QCheck.Test.make ~name:"ideal networks are strongly connected" ~count:30
    QCheck.(pair (int_range 2 128) (int_range 0 4))
    (fun (n, links) ->
      let net = Network.build_ideal ~n ~links (Rng.of_int (n + links)) in
      Ftr_graph.Bfs.is_strongly_connected (Network.to_adjacency net))

let prop_deterministic_degree_bound =
  QCheck.Test.make ~name:"deterministic degree <= 2(b-1)ceil(log_b n)" ~count:50
    QCheck.(pair (int_range 4 512) (int_range 2 5))
    (fun (n, base) ->
      let net = Network.build_deterministic ~n ~base in
      let bound = 2 * Network.links net in
      let ok = ref true in
      for u = 0 to n - 1 do
        if Array.length (Network.neighbors net u) > bound then ok := false
      done;
      !ok)

let prop_serial_roundtrip =
  QCheck.Test.make ~name:"serialization roundtrips any ideal network" ~count:40
    QCheck.(triple (int_range 2 128) (int_range 0 5) small_int)
    (fun (n, links, seed) ->
      let net = Network.build_ideal ~n ~links (Rng.of_int seed) in
      let restored = Ftr_core.Serial.of_string (Ftr_core.Serial.to_string net) in
      let ok = ref (Network.size net = Network.size restored) in
      for i = 0 to Network.size net - 1 do
        if Network.neighbors net i <> Network.neighbors restored i then ok := false
      done;
      !ok)

let prop_ring_distance_bounded =
  QCheck.Test.make ~name:"ring distances never exceed n/2" ~count:100
    QCheck.(pair (int_range 3 256) small_int)
    (fun (n, seed) ->
      let net = Network.build_ring ~n ~links:2 (Rng.of_int seed) in
      let r = Rng.of_int (seed + 1) in
      let a = Rng.int r n and b = Rng.int r n in
      Network.distance net a b <= n / 2)

let prop_chordlike_links_are_powers =
  QCheck.Test.make ~name:"chordlike links sit at clockwise powers of two" ~count:60
    QCheck.(int_range 8 512)
    (fun n ->
      (* The behavioural equivalence with Chord lives in test_baselines;
         here, the structural half: every link of node 0 is the successor,
         a clockwise power of two, or (n-1, the implicit wrap of the
         successor link of node n-1 — absent by construction). *)
      let net = Network.build_chordlike ~n () in
      Array.for_all
        (fun v ->
          let d = Network.clockwise_distance net ~src:0 ~dst:v in
          d >= 1 && d land (d - 1) = 0)
        (Network.neighbors net 0))

let prop_binomial_positions_sorted =
  QCheck.Test.make ~name:"binomial positions strictly increasing" ~count:30
    QCheck.(pair (int_range 8 256) (int_range 1 9))
    (fun (n, tenths) ->
      let p = float_of_int tenths /. 10.0 in
      let net = Network.build_binomial ~n ~links:1 ~present_p:p (Rng.of_int (n * tenths)) in
      let ok = ref true in
      for i = 1 to Network.size net - 1 do
        if Network.position net i <= Network.position net (i - 1) then ok := false
      done;
      !ok)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "network"
    [
      ( "ideal",
        [
          quick "shape" ideal_shape;
          quick "degrees" ideal_degrees;
          quick "immediate neighbours present" ideal_has_immediate_neighbors;
          quick "neighbours sorted and valid" ideal_neighbors_sorted_and_valid;
          quick "link lengths follow 1/d" ideal_link_lengths_follow_harmonic;
          quick "deterministic by seed" ideal_deterministic_by_seed;
          quick "rejects tiny networks" ideal_rejects;
          quick "zero long links" ideal_zero_links;
          quick "strongly connected" ideal_strongly_connected;
        ] );
      ( "deterministic",
        [
          quick "exact link set (base 2)" deterministic_exact_links;
          quick "base 3" deterministic_base3;
          quick "interior lengths are powers" deterministic_symmetric_interior;
          quick "geometric variant" geometric_links;
        ] );
      ( "binomial",
        [
          quick "present subset" binomial_present_subset;
          quick "links among present only" binomial_links_present_only;
          quick "immediate are adjacent indices" binomial_immediate_are_adjacent_indices;
          quick "full at p=1" binomial_full_at_p1;
          quick "rejects p=0" binomial_rejects;
        ] );
      ( "ring",
        [
          quick "shape" ring_shape;
          quick "distance wraps" ring_distance_wraps;
          quick "link lengths bounded by n/2" ring_link_lengths_bounded;
          quick "link lengths follow 1/d" ring_link_lengths_follow_harmonic;
          quick "line vs ring distance" ring_line_distance_disagree;
          quick "clockwise rejected on line" ring_clockwise_rejected_on_line;
          quick "rejects tiny rings" ring_rejects;
        ] );
      ( "lookup",
        [
          quick "nearest index on full nets" nearest_index_full;
          quick "nearest index on sparse nets" nearest_index_sparse;
          quick "of_neighbor_indices validates" of_neighbor_indices_validates;
          quick "distance via positions" distance_via_positions;
          quick "long link lengths exclude ring" long_link_lengths_excludes_ring;
        ] );
      ( "sampling",
        [
          quick "targets on the line" sample_target_in_range;
          quick "edge nodes sample one side" sample_target_edge_node_one_sided;
          quick "midpoint side balance" sample_target_side_balance;
        ] );
      ( "serialization",
        [
          quick "string roundtrip" serial_string_roundtrip;
          quick "circle roundtrip" serial_ring_roundtrip;
          quick "sparse roundtrip" serial_sparse_roundtrip;
          quick "file roundtrip" serial_file_roundtrip;
          quick "restored network routes identically" serial_restored_routes_identically;
          quick "rejects garbage" serial_rejects_garbage;
        ] );
      ( "properties",
        List.map (fun p -> QCheck_alcotest.to_alcotest p)
          [
            prop_ideal_connected;
            prop_deterministic_degree_bound;
            prop_binomial_positions_sorted;
            prop_serial_roundtrip;
            prop_ring_distance_bounded;
            prop_chordlike_links_are_powers;
          ]
      );
    ]
