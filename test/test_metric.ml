module Line = Ftr_metric.Line
module Ring = Ftr_metric.Ring
module Torus = Ftr_metric.Torus

(* ------------------------------------------------------------------ *)
(* Line                                                                *)
(* ------------------------------------------------------------------ *)

let line_distance () =
  let l = Line.create 100 in
  Alcotest.(check int) "|3-10|" 7 (Line.distance l 3 10);
  Alcotest.(check int) "|10-3|" 7 (Line.distance l 10 3);
  Alcotest.(check int) "zero" 0 (Line.distance l 42 42)

let line_directed () =
  let l = Line.create 100 in
  Alcotest.(check int) "forward" 7 (Line.directed l ~src:3 ~dst:10);
  Alcotest.(check int) "backward" (-7) (Line.directed l ~src:10 ~dst:3)

let line_bounds () =
  let l = Line.create 10 in
  Alcotest.(check bool) "contains 0" true (Line.contains l 0);
  Alcotest.(check bool) "contains 9" true (Line.contains l 9);
  Alcotest.(check bool) "excludes 10" false (Line.contains l 10);
  Alcotest.(check bool) "excludes -1" false (Line.contains l (-1));
  Alcotest.check_raises "distance out of range" (Invalid_argument "Line: point out of range")
    (fun () -> ignore (Line.distance l 0 10))

let line_clamp_midpoint () =
  let l = Line.create 10 in
  Alcotest.(check int) "clamp low" 0 (Line.clamp l (-5));
  Alcotest.(check int) "clamp high" 9 (Line.clamp l 50);
  Alcotest.(check int) "clamp inside" 4 (Line.clamp l 4);
  Alcotest.(check int) "midpoint" 4 (Line.midpoint l 2 7)

let line_rejects_empty () =
  Alcotest.check_raises "size 0" (Invalid_argument "Line.create: size must be >= 1") (fun () ->
      ignore (Line.create 0))

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let ring_distance () =
  let r = Ring.create 10 in
  Alcotest.(check int) "short way" 3 (Ring.distance r 1 4);
  Alcotest.(check int) "wraps" 2 (Ring.distance r 9 1);
  Alcotest.(check int) "antipode" 5 (Ring.distance r 0 5)

let ring_clockwise () =
  let r = Ring.create 10 in
  Alcotest.(check int) "forward" 3 (Ring.clockwise_distance r ~src:1 ~dst:4);
  Alcotest.(check int) "around" 8 (Ring.clockwise_distance r ~src:4 ~dst:2);
  Alcotest.(check int) "self" 0 (Ring.clockwise_distance r ~src:7 ~dst:7)

let ring_normalize_add () =
  let r = Ring.create 10 in
  Alcotest.(check int) "negative" 7 (Ring.normalize r (-3));
  Alcotest.(check int) "large" 3 (Ring.normalize r 23);
  Alcotest.(check int) "add wraps" 2 (Ring.add r 9 3);
  Alcotest.(check int) "add negative" 8 (Ring.add r 1 (-3))

let ring_distance_symmetric () =
  let r = Ring.create 17 in
  for a = 0 to 16 do
    for b = 0 to 16 do
      Alcotest.(check int) "symmetry" (Ring.distance r a b) (Ring.distance r b a)
    done
  done

(* ------------------------------------------------------------------ *)
(* Torus                                                               *)
(* ------------------------------------------------------------------ *)

let torus_sizes () =
  let t = Torus.create ~dims:2 ~side:8 in
  Alcotest.(check int) "size" 64 (Torus.size t);
  Alcotest.(check int) "dims" 2 (Torus.dims t);
  Alcotest.(check int) "side" 8 (Torus.side t);
  let t3 = Torus.create ~dims:3 ~side:4 in
  Alcotest.(check int) "3d size" 64 (Torus.size t3)

let torus_coords_roundtrip () =
  let t = Torus.create ~dims:3 ~side:5 in
  for p = 0 to Torus.size t - 1 do
    Alcotest.(check int) "roundtrip" p (Torus.index t (Torus.coords t p))
  done

let torus_distance_wraps () =
  let t = Torus.create ~dims:2 ~side:8 in
  let p = Torus.index t [| 0; 0 |] and q = Torus.index t [| 7; 7 |] in
  Alcotest.(check int) "corner wrap" 2 (Torus.distance t p q);
  let r = Torus.index t [| 4; 4 |] in
  Alcotest.(check int) "antipode" 8 (Torus.distance t p r)

let torus_axis_distance () =
  let t = Torus.create ~dims:2 ~side:8 in
  Alcotest.(check int) "direct" 3 (Torus.axis_distance t 1 4);
  Alcotest.(check int) "wrapped" 2 (Torus.axis_distance t 7 1)

let torus_neighbors () =
  let t = Torus.create ~dims:2 ~side:5 in
  let p = Torus.index t [| 2; 2 |] in
  let ns = Torus.neighbors t p in
  Alcotest.(check int) "four lattice neighbours" 4 (List.length ns);
  List.iter
    (fun v -> Alcotest.(check int) "at distance 1" 1 (Torus.distance t p v))
    ns

let torus_neighbors_wrap () =
  let t = Torus.create ~dims:2 ~side:5 in
  let p = Torus.index t [| 0; 0 |] in
  let ns = Torus.neighbors t p in
  Alcotest.(check int) "four neighbours with wrap" 4 (List.length ns);
  Alcotest.(check bool) "wraps to side-1" true
    (List.mem (Torus.index t [| 4; 0 |]) ns && List.mem (Torus.index t [| 0; 4 |]) ns)

let torus_move () =
  let t = Torus.create ~dims:2 ~side:6 in
  let p = Torus.index t [| 5; 3 |] in
  Alcotest.(check int) "move wraps" (Torus.index t [| 1; 3 |]) (Torus.move t p ~axis:0 ~delta:2);
  Alcotest.(check int) "move back" (Torus.index t [| 5; 1 |]) (Torus.move t p ~axis:1 ~delta:(-2))

let torus_tiny_sides () =
  (* side = 2: +1 and -1 coincide, so each node has exactly dims
     neighbours; side = 3 has the full 2*dims. *)
  let t2 = Torus.create ~dims:2 ~side:2 in
  Alcotest.(check int) "side 2 dedup" 2 (List.length (Torus.neighbors t2 0));
  let t3 = Torus.create ~dims:2 ~side:3 in
  Alcotest.(check int) "side 3 full" 4 (List.length (Torus.neighbors t3 0));
  Alcotest.(check int) "side 2 max distance" 2
    (Torus.distance t2 (Torus.index t2 [| 0; 0 |]) (Torus.index t2 [| 1; 1 |]))

let torus_rejects () =
  Alcotest.check_raises "bad dims" (Invalid_argument "Torus.create: dims must be >= 1")
    (fun () -> ignore (Torus.create ~dims:0 ~side:4));
  let t = Torus.create ~dims:2 ~side:4 in
  Alcotest.check_raises "bad coords" (Invalid_argument "Torus.index: wrong dimensionality")
    (fun () -> ignore (Torus.index t [| 1 |]))

(* ------------------------------------------------------------------ *)
(* Properties: all three spaces are metrics                            *)
(* ------------------------------------------------------------------ *)

let prop_line_triangle =
  QCheck.Test.make ~name:"line triangle inequality" ~count:500
    QCheck.(triple (int_range 0 99) (int_range 0 99) (int_range 0 99))
    (fun (a, b, c) ->
      let l = Line.create 100 in
      Line.distance l a c <= Line.distance l a b + Line.distance l b c)

let prop_ring_triangle =
  QCheck.Test.make ~name:"ring triangle inequality" ~count:500
    QCheck.(triple (int_range 0 99) (int_range 0 99) (int_range 0 99))
    (fun (a, b, c) ->
      let r = Ring.create 100 in
      Ring.distance r a c <= Ring.distance r a b + Ring.distance r b c)

let prop_torus_triangle =
  QCheck.Test.make ~name:"torus triangle inequality" ~count:500
    QCheck.(triple (int_range 0 63) (int_range 0 63) (int_range 0 63))
    (fun (a, b, c) ->
      let t = Torus.create ~dims:2 ~side:8 in
      Torus.distance t a c <= Torus.distance t a b + Torus.distance t b c)

let prop_torus_symmetry =
  QCheck.Test.make ~name:"torus distance symmetric" ~count:500
    QCheck.(pair (int_range 0 63) (int_range 0 63))
    (fun (a, b) ->
      let t = Torus.create ~dims:2 ~side:8 in
      Torus.distance t a b = Torus.distance t b a)

let prop_ring_clockwise_consistent =
  QCheck.Test.make ~name:"ring distance = min of both arcs" ~count:500
    QCheck.(pair (int_range 0 99) (int_range 0 99))
    (fun (a, b) ->
      let r = Ring.create 100 in
      let cw = Ring.clockwise_distance r ~src:a ~dst:b in
      let ccw = Ring.clockwise_distance r ~src:b ~dst:a in
      Ring.distance r a b = min cw ccw)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "metric"
    [
      ( "line",
        [
          quick "distance" line_distance;
          quick "directed offset" line_directed;
          quick "bounds" line_bounds;
          quick "clamp and midpoint" line_clamp_midpoint;
          quick "rejects empty" line_rejects_empty;
        ] );
      ( "ring",
        [
          quick "distance" ring_distance;
          quick "clockwise" ring_clockwise;
          quick "normalize and add" ring_normalize_add;
          quick "symmetric" ring_distance_symmetric;
        ] );
      ( "torus",
        [
          quick "sizes" torus_sizes;
          quick "coords roundtrip" torus_coords_roundtrip;
          quick "distance wraps" torus_distance_wraps;
          quick "axis distance" torus_axis_distance;
          quick "lattice neighbours" torus_neighbors;
          quick "neighbours wrap" torus_neighbors_wrap;
          quick "move" torus_move;
          quick "tiny sides" torus_tiny_sides;
          quick "rejects bad input" torus_rejects;
        ] );
      ( "properties",
        List.map (fun p -> QCheck_alcotest.to_alcotest p)
          [
            prop_line_triangle;
            prop_ring_triangle;
            prop_torus_triangle;
            prop_torus_symmetry;
            prop_ring_clockwise_consistent;
          ] );
    ]
