(* ftr-lint: disable-file R2 test assertions compare small concrete values *)
(* The message-passing overlay service: deterministic mailboxes, the
   round scheduler's jobs-invariance (including under mid-run churn), the
   equivalence of served lookups with the synchronous overlay path, and a
   clean drain when the workload stops mid-churn. *)

module Rng = Ftr_prng.Rng
module Engine = Ftr_sim.Engine
module Overlay = Ftr_p2p.Overlay
module Mailbox = Ftr_svc.Mailbox
module Service = Ftr_svc.Service
module Driver = Ftr_svc.Driver
module Message = Ftr_svc.Message
module Pool = Ftr_exec.Pool

(* ------------------------------------------------------------------ *)
(* Mailbox                                                             *)
(* ------------------------------------------------------------------ *)

let mailbox_delivery_order () =
  let mb = Mailbox.create ~owner:0 () in
  (* Posted out of order on every key component. *)
  assert (Mailbox.post mb ~time:5 ~src:9 ~seq:0 "t5s9");
  assert (Mailbox.post mb ~time:3 ~src:2 ~seq:1 "t3s2q1");
  assert (Mailbox.post mb ~time:3 ~src:2 ~seq:0 "t3s2q0");
  assert (Mailbox.post mb ~time:3 ~src:1 ~seq:7 "t3s1");
  assert (Mailbox.post mb ~time:4 ~src:0 ~seq:0 "t4");
  Alcotest.(check bool) "well ordered" true (Mailbox.well_ordered mb);
  let due = Mailbox.take_due mb ~now:3 in
  Alcotest.(check (list string))
    "due at 3, in (time, src, seq) order"
    [ "t3s1"; "t3s2q0"; "t3s2q1" ]
    (List.map (fun e -> e.Mailbox.e_msg) due);
  Alcotest.(check int) "rest stays" 2 (Mailbox.length mb);
  let rest = Mailbox.take_due mb ~now:99 in
  Alcotest.(check (list string)) "rest in order" [ "t4"; "t5s9" ]
    (List.map (fun e -> e.Mailbox.e_msg) rest);
  Alcotest.(check bool) "empty" true (Mailbox.is_empty mb)

let mailbox_capacity_drops () =
  let mb = Mailbox.create ~capacity:2 ~owner:3 () in
  assert (Mailbox.post mb ~time:1 ~src:0 ~seq:0 0);
  assert (Mailbox.post mb ~time:1 ~src:0 ~seq:1 1);
  Alcotest.(check bool) "third refused" false (Mailbox.post mb ~time:1 ~src:0 ~seq:2 2);
  Alcotest.(check int) "drop counted" 1 (Mailbox.dropped mb);
  Alcotest.(check int) "high water" 2 (Mailbox.high_water mb);
  Alcotest.(check int) "length bounded" 2 (Mailbox.length mb)

(* Any post sequence leaves the mailbox well ordered, and a full drain
   hands back exactly the sorted keys. *)
let mailbox_order_qcheck =
  QCheck.Test.make ~count:200 ~name:"mailbox drains in sorted key order"
    QCheck.(list (tup3 (int_bound 7) (int_bound 5) (int_bound 1000)))
    (fun posts ->
      let mb = Mailbox.create ~owner:0 () in
      List.iteri (fun seq (time, src, msg) -> ignore (Mailbox.post mb ~time ~src ~seq msg)) posts;
      let ok_sorted = Mailbox.well_ordered mb in
      let keys = Mailbox.keys mb in
      let drained = Mailbox.take_due mb ~now:max_int in
      let drained_keys = List.map (fun e -> (e.Mailbox.e_time, e.Mailbox.e_src, e.Mailbox.e_seq)) drained in
      ok_sorted && drained_keys = keys
      && drained_keys = List.sort compare drained_keys
      && Mailbox.is_empty mb)

(* ------------------------------------------------------------------ *)
(* Equivalence with the synchronous overlay                            *)
(* ------------------------------------------------------------------ *)

(* Build a populated overlay with a failure set, all under regeneration
   off and constant latency, so a lookup's outcome is a pure function of
   link state — then check the served path and the synchronous path give
   the same owner and hop count for the same request sequence, with both
   sides' cumulative repairs kept in lockstep by issuing one lookup at a
   time. *)
let equivalence_run seed =
  let line_size = 512 and links = 4 and count = 40 in
  let rng = Rng.of_int seed in
  let engine = Engine.create () in
  let ov =
    Overlay.create ~regenerate:false ~line_size ~links ~rng:(Rng.of_int (seed + 1)) engine
  in
  Overlay.populate ov ~positions:(List.init count (fun i -> i * line_size / count));
  Engine.run engine;
  (* Fail ~25% of the nodes, keeping at least three alive. *)
  let live = Array.of_list (Overlay.live_positions ov) in
  let kills = ref [] in
  Array.iter
    (fun pos -> if Rng.float rng < 0.25 && Array.length live - List.length !kills > 3 then kills := pos :: !kills)
    live;
  List.iter (fun pos -> Overlay.crash ov ~pos) !kills;
  Engine.run engine;
  (* Snapshot the post-failure network into the service before either
     side routes anything. *)
  let svc = Service.of_overlay ~regenerate:false ~seed ov in
  let mismatches = ref [] in
  Pool.with_resident ~jobs:2 (fun pool ->
      for _ = 1 to 25 do
        let lives = Array.of_list (Overlay.live_positions ov) in
        let from = lives.(Rng.int rng (Array.length lives)) in
        let target = Rng.int rng line_size in
        (* Synchronous side. *)
        let sync_result = ref None in
        Overlay.lookup ov ~from ~target
          ~callback:(fun ~owner ~hops -> sync_result := Some (owner, hops))
          ();
        Engine.run engine;
        (* Served side: same request, run to quiescence. *)
        let id = Service.request svc ~src:from ~target in
        ignore (Service.drain svc ~pool);
        let served =
          match Service.request_outcome svc ~request:id with
          | Some (Message.Delivered { owner; hops }) -> Some (owner, hops)
          | Some (Message.Failed _) | None -> None
        in
        if served <> !sync_result then
          mismatches :=
            Printf.sprintf "seed=%d %d->%d: sync=%s served=%s" seed from target
              (match !sync_result with
              | Some (o, h) -> Printf.sprintf "ok(%d,%d)" o h
              | None -> "fail")
              (match served with
              | Some (o, h) -> Printf.sprintf "ok(%d,%d)" o h
              | None -> "fail")
            :: !mismatches
      done);
  !mismatches

let equivalence_fixed () =
  match equivalence_run 42 with
  | [] -> ()
  | ms -> Alcotest.failf "served/synchronous divergence:\n%s" (String.concat "\n" ms)

let equivalence_qcheck =
  QCheck.Test.make ~count:8 ~name:"served lookups match the synchronous overlay"
    QCheck.(int_bound 10_000)
    (fun seed ->
      match equivalence_run seed with
      | [] -> true
      | m :: _ -> QCheck.Test.fail_report m)

(* ------------------------------------------------------------------ *)
(* Jobs-invariance under churn                                         *)
(* ------------------------------------------------------------------ *)

let churn_config =
  {
    Driver.default_config with
    Driver.line_size = 512;
    initial = 48;
    links = 4;
    seed = 7;
    ticks = 24;
    rate = 4;
    join_rate = 0.5;
    crash_rate = 0.5;
    leave_rate = 0.25;
    stabilize = 2;
    record = true;
  }

let serialize (res : Driver.result) =
  res.Driver.res_transcript
  ^ String.concat "\n" (Driver.report_lines ~wall:false res.Driver.res_report)
  ^ "\n"

let transcript_jobs_invariant () =
  let reference = serialize (Driver.run { churn_config with Driver.jobs = Some 1 }) in
  List.iter
    (fun j ->
      let out = serialize (Driver.run { churn_config with Driver.jobs = Some j }) in
      Alcotest.(check string) (Printf.sprintf "jobs=%d byte-identical" j) reference out)
    [ 2; 4 ];
  Unix.putenv "FTR_EXEC_SEQ" "1";
  let seq = serialize (Driver.run { churn_config with Driver.jobs = None }) in
  Unix.putenv "FTR_EXEC_SEQ" "0";
  Alcotest.(check string) "FTR_EXEC_SEQ=1 byte-identical" reference seq

let invariants_hold_after_churn () =
  let res = Driver.run { churn_config with Driver.seed = 9 } in
  (match Driver.invariant_problems res with
  | [] -> ()
  | ps -> Alcotest.failf "invariants violated:\n%s" (String.concat "\n" ps));
  let r = res.Driver.res_report in
  Alcotest.(check bool) "work happened" true (r.Driver.rp_issued > 0 && r.Driver.rp_crashes > 0)

(* ------------------------------------------------------------------ *)
(* Kill mid-churn: the scheduler drains clean                          *)
(* ------------------------------------------------------------------ *)

(* Stop the workload abruptly while lookups, joins and repair traffic are
   still in flight, then drain with no new input: every mailbox must
   empty, every request must resolve (or be accounted as a shutdown
   timeout), and nothing may be silently lost. *)
let kill_mid_churn_drains_clean () =
  let cfg = { churn_config with Driver.seed = 11; ticks = 10 } in
  let ov = Driver.build_overlay cfg in
  let svc =
    Service.of_overlay ~shards:cfg.Driver.shards ~record:false ~seed:cfg.Driver.seed ov
  in
  let rng = Ftr_exec.Seed.rng_for ~seed:cfg.Driver.seed ~index:cfg.Driver.line_size in
  Pool.with_resident ~jobs:3 (fun pool ->
      (* Run churn ticks, then kill the workload with mail still queued. *)
      for _ = 1 to cfg.Driver.ticks do
        Driver.control cfg rng svc;
        Service.step svc ~pool
      done;
      Alcotest.(check bool) "mail still in flight at the kill point" true
        (Service.mail_pending svc);
      ignore (Service.drain svc ~pool));
  Service.force_timeouts svc;
  Alcotest.(check bool) "all mailboxes drained" false (Service.mail_pending svc);
  let s = Service.stats svc in
  Alcotest.(check int) "request conservation" s.Service.issued
    (s.Service.ok + s.Service.failed + s.Service.timed_out);
  Alcotest.(check int) "no overflow drops" 0 s.Service.dropped;
  Service.iter_actors svc (fun v ->
      Alcotest.(check int)
        (Printf.sprintf "actor %d mailbox empty" v.Service.av_pos)
        0 v.Service.av_mail_length;
      Alcotest.(check bool)
        (Printf.sprintf "actor %d mailbox ordered" v.Service.av_pos)
        true v.Service.av_mail_well_ordered)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "svc"
    [
      ( "mailbox",
        [
          Alcotest.test_case "delivery order" `Quick mailbox_delivery_order;
          Alcotest.test_case "capacity drops" `Quick mailbox_capacity_drops;
          QCheck_alcotest.to_alcotest mailbox_order_qcheck;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "fixed seed" `Quick equivalence_fixed;
          QCheck_alcotest.to_alcotest equivalence_qcheck;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "transcript jobs-invariant under churn" `Slow
            transcript_jobs_invariant;
          Alcotest.test_case "invariants hold after churn" `Quick invariants_hold_after_churn;
        ] );
      ( "drain",
        [ Alcotest.test_case "kill mid-churn drains clean" `Quick kill_mid_churn_drains_clean ]
      );
    ]
