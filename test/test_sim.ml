(* ftr-lint: disable-file R2 T3 test assertions compare small concrete values *)
module Heap = Ftr_sim.Heap
module Engine = Ftr_sim.Engine
module Trace = Ftr_sim.Trace

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let heap_ordering () =
  let h = Heap.create ~compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 0 ];
  Alcotest.(check (list int)) "sorted drain" [ 0; 1; 1; 3; 4; 5; 9 ] (Heap.to_sorted_list h);
  Alcotest.(check int) "drain did not consume" 7 (Heap.length h)

let heap_pop_order () =
  let h = Heap.create ~compare in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Heap.pop h);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "empty" None (Heap.pop h)

let heap_empty () =
  let h = Heap.create ~compare in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek none" None (Heap.peek h);
  Alcotest.(check (list int)) "sorted empty" [] (Heap.to_sorted_list h)

let heap_clear () =
  let h = Heap.create ~compare in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let heap_grows () =
  let h = Heap.create ~compare in
  for i = 1000 downto 1 do
    Heap.push h i
  done;
  Alcotest.(check int) "length" 1000 (Heap.length h);
  Alcotest.(check (option int)) "min" (Some 1) (Heap.peek h)

let prop_engine_executes_in_time_order =
  (* Random schedules (with cancellations) always execute in
     non-decreasing time order, and exactly the non-cancelled ones run. *)
  QCheck.Test.make ~name:"engine executes schedules in time order" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 40) (pair (float_range 0.0 100.0) bool))
    (fun schedule ->
      let e = Engine.create () in
      let executed = ref [] in
      let expected = ref 0 in
      List.iter
        (fun (t, keep) ->
          let h = Engine.schedule_at e ~time:t (fun () -> executed := Engine.now e :: !executed) in
          if keep then incr expected else Engine.cancel e h)
        schedule;
      Engine.run e;
      let times = List.rev !executed in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      List.length times = !expected && sorted times)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let h = Heap.create ~compare in
      List.iter (Heap.push h) xs;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule_at e ~time:3.0 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule_at e ~time:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule_at e ~time:2.0 (fun () -> log := 2 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Engine.now e)

let engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule_at e ~time:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "same-time events run FIFO" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let engine_schedule_after () =
  let e = Engine.create () in
  let seen = ref [] in
  ignore
    (Engine.schedule_at e ~time:5.0 (fun () ->
         ignore (Engine.schedule_after e ~delay:2.5 (fun () -> seen := Engine.now e :: !seen))));
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "relative delay" [ 7.5 ] !seen

let engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_at e ~time:1.0 (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run e;
  Alcotest.(check bool) "cancelled event does not fire" false !fired;
  Alcotest.(check int) "nothing executed" 0 (Engine.executed_events e)

let engine_pending_accounting () =
  let e = Engine.create () in
  let h1 = Engine.schedule_at e ~time:1.0 (fun () -> ()) in
  ignore (Engine.schedule_at e ~time:2.0 (fun () -> ()));
  Alcotest.(check int) "two pending" 2 (Engine.pending_events e);
  Engine.cancel e h1;
  Alcotest.(check int) "one pending after cancel" 1 (Engine.pending_events e);
  Engine.run e;
  Alcotest.(check int) "none pending" 0 (Engine.pending_events e);
  Alcotest.(check int) "one executed" 1 (Engine.executed_events e)

let engine_run_until () =
  let e = Engine.create () in
  let log = ref [] in
  List.iter
    (fun t -> ignore (Engine.schedule_at e ~time:t (fun () -> log := t :: !log)))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Engine.run ~until:2.5 e;
  Alcotest.(check (list (float 1e-9))) "stops at horizon" [ 1.0; 2.0 ] (List.rev !log);
  Engine.run e;
  Alcotest.(check int) "resumes" 4 (List.length !log)

let engine_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule_at e ~time:(float_of_int i) (fun () -> incr count))
  done;
  Engine.run ~max_events:3 e;
  Alcotest.(check int) "bounded" 3 !count

let engine_rejects_past () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e ~time:5.0 (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> ignore (Engine.schedule_at e ~time:1.0 (fun () -> ())))

let engine_cascading_events () =
  (* Events scheduling events: a chain of n self-propagating steps. *)
  let e = Engine.create () in
  let count = ref 0 in
  let rec step () =
    incr count;
    if !count < 100 then ignore (Engine.schedule_after e ~delay:1.0 step)
  in
  ignore (Engine.schedule_at e ~time:0.0 step);
  Engine.run e;
  Alcotest.(check int) "chain length" 100 !count;
  Alcotest.(check (float 1e-9)) "final time" 99.0 (Engine.now e)

let engine_drain () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e ~time:1.0 (fun () -> Alcotest.fail "should not run"));
  Engine.drain e;
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Engine.executed_events e)

(* ------------------------------------------------------------------ *)
(* Periodic                                                            *)
(* ------------------------------------------------------------------ *)

module Periodic = Ftr_sim.Periodic

let periodic_every_fires_to_horizon () =
  let e = Engine.create () in
  let count = ref 0 in
  Periodic.every e ~period:1.0 ~until:10.5 (fun () -> incr count);
  Engine.run e;
  Alcotest.(check int) "ten ticks" 10 !count;
  Alcotest.(check int) "queue drained" 0 (Engine.pending_events e)

let periodic_every_respects_start () =
  let e = Engine.create () in
  let first = ref nan in
  Periodic.every e ~period:2.5 ~until:100.0 (fun () ->
      if Float.is_nan !first then first := Engine.now e);
  Engine.run ~until:6.0 e;
  Alcotest.(check (float 1e-9)) "first tick one period in" 2.5 !first

let periodic_every_never_fires_past_horizon () =
  let e = Engine.create () in
  let count = ref 0 in
  Periodic.every e ~period:5.0 ~until:3.0 (fun () -> incr count);
  Engine.run e;
  Alcotest.(check int) "horizon before first tick" 0 !count

let periodic_poisson_rate () =
  let e = Engine.create () in
  let rng = Ftr_prng.Rng.of_int 99 in
  let count = ref 0 in
  Periodic.poisson e rng ~rate:2.0 ~until:1000.0 (fun () -> incr count);
  Engine.run e;
  (* Expect ~2000 events; allow 5 sigma. *)
  Alcotest.(check bool) (Printf.sprintf "%d events" !count) true
    (abs (!count - 2000) < 250)

let periodic_countdown () =
  let e = Engine.create () in
  let seen = ref [] in
  Periodic.countdown e ~period:1.0 ~times:4 (fun i -> seen := (i, Engine.now e) :: !seen);
  Engine.run e;
  Alcotest.(check (list (pair int (float 1e-9))))
    "indexed ticks"
    [ (0, 1.0); (1, 2.0); (2, 3.0); (3, 4.0) ]
    (List.rev !seen)

let periodic_rejects () =
  let e = Engine.create () in
  Alcotest.check_raises "bad period" (Invalid_argument "Periodic.every: period must be positive")
    (fun () -> Periodic.every e ~period:0.0 ~until:1.0 (fun () -> ()));
  Alcotest.check_raises "bad rate" (Invalid_argument "Periodic.poisson: rate must be positive")
    (fun () -> Periodic.poisson e (Ftr_prng.Rng.of_int 1) ~rate:0.0 ~until:1.0 (fun () -> ()))

(* ------------------------------------------------------------------ *)
(* Latency models                                                      *)
(* ------------------------------------------------------------------ *)

module Latency = Ftr_sim.Latency

let latency_constant () =
  let m = Latency.constant 2.5 in
  let rng = Ftr_prng.Rng.of_int 1 in
  for _ = 1 to 20 do
    Alcotest.(check (float 1e-12)) "always the same" 2.5 (Latency.sample m rng)
  done;
  Alcotest.(check (float 1e-12)) "mean" 2.5 (Latency.mean m)

let latency_uniform_range () =
  let m = Latency.uniform ~lo:1.0 ~hi:3.0 in
  let rng = Ftr_prng.Rng.of_int 2 in
  let s = Ftr_stats.Summary.create () in
  for _ = 1 to 10_000 do
    let v = Latency.sample m rng in
    Alcotest.(check bool) "in range" true (v >= 1.0 && v < 3.0);
    Ftr_stats.Summary.add s v
  done;
  Alcotest.(check bool) "mean near 2" true (abs_float (Ftr_stats.Summary.mean s -. 2.0) < 0.05);
  Alcotest.(check (float 1e-12)) "model mean" 2.0 (Latency.mean m)

let latency_exponential_positive_mean () =
  let m = Latency.exponential ~mean:1.5 in
  let rng = Ftr_prng.Rng.of_int 3 in
  let s = Ftr_stats.Summary.create () in
  for _ = 1 to 20_000 do
    let v = Latency.sample m rng in
    Alcotest.(check bool) "positive" true (v > 0.0);
    Ftr_stats.Summary.add s v
  done;
  Alcotest.(check bool) "mean near 1.5" true (abs_float (Ftr_stats.Summary.mean s -. 1.5) < 0.05)

let latency_rejects () =
  Alcotest.check_raises "bad constant"
    (Invalid_argument "Latency.constant: delay must be positive") (fun () ->
      ignore (Latency.constant 0.0));
  Alcotest.check_raises "bad uniform" (Invalid_argument "Latency.uniform: need 0 < lo <= hi")
    (fun () -> ignore (Latency.uniform ~lo:2.0 ~hi:1.0))

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_records () =
  let t = Trace.create () in
  Trace.infof t ~time:1.0 "hello %d" 42;
  Trace.warnf t ~time:2.0 "oops";
  let entries = Trace.entries t in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  match entries with
  | [ a; b ] ->
      Alcotest.(check string) "formatted" "hello 42" a.Trace.message;
      Alcotest.(check (float 1e-9)) "time order" 2.0 b.Trace.time
  | _ -> Alcotest.fail "unexpected shape"

let trace_level_filter () =
  let t = Trace.create ~min_level:Trace.Warn () in
  Trace.infof t ~time:1.0 "suppressed";
  Trace.warnf t ~time:2.0 "kept";
  Alcotest.(check int) "only warn kept" 1 (Trace.length t)

let trace_dump_renders () =
  let t = Trace.create () in
  Trace.infof t ~time:1.5 "first";
  Trace.warnf t ~time:2.25 "second";
  let rendered = Format.asprintf "%a" Trace.dump t in
  Alcotest.(check bool) "mentions messages" true
    (let has needle =
       let nh = String.length rendered and nn = String.length needle in
       let rec go i = i + nn <= nh && (String.sub rendered i nn = needle || go (i + 1)) in
       go 0
     in
     has "first" && has "second" && has "warn")

let trace_level_can_change () =
  let t = Trace.create ~min_level:Trace.Warn () in
  Trace.infof t ~time:1.0 "dropped";
  Trace.set_min_level t Trace.Debug;
  Trace.debugf t ~time:2.0 "kept";
  Alcotest.(check int) "only post-change entry" 1 (Trace.length t)

let trace_capacity () =
  let t = Trace.create ~capacity:10 ~min_level:Trace.Debug () in
  for i = 1 to 100 do
    Trace.debugf t ~time:(float_of_int i) "entry %d" i
  done;
  Alcotest.(check bool) "bounded" true (Trace.length t <= 10);
  (* The newest entry must survive the trimming. *)
  let last = List.nth (Trace.entries t) (Trace.length t - 1) in
  Alcotest.(check string) "newest kept" "entry 100" last.Trace.message

(* Determinism: the same seeded simulation yields the same trajectory. *)
let engine_deterministic_replay () =
  let run_once seed =
    let rng = Ftr_prng.Rng.of_int seed in
    let e = Engine.create () in
    let log = ref [] in
    let rec step remaining =
      if remaining > 0 then begin
        let delay = Ftr_prng.Rng.float rng +. 0.01 in
        ignore
          (Engine.schedule_after e ~delay (fun () ->
               log := Engine.now e :: !log;
               step (remaining - 1)))
      end
    in
    step 50;
    Engine.run e;
    !log
  in
  Alcotest.(check (list (float 1e-12))) "same seed same trajectory" (run_once 7) (run_once 7);
  Alcotest.(check bool) "different seed differs" true (run_once 7 <> run_once 8)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "sim"
    [
      ( "heap",
        [
          quick "ordering" heap_ordering;
          quick "pop order" heap_pop_order;
          quick "empty" heap_empty;
          quick "clear" heap_clear;
          quick "growth" heap_grows;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
        ] );
      ( "engine",
        [
          quick "time order" engine_time_order;
          quick "FIFO tie-breaking" engine_fifo_ties;
          quick "schedule_after" engine_schedule_after;
          quick "cancel" engine_cancel;
          quick "pending accounting" engine_pending_accounting;
          quick "run until horizon" engine_run_until;
          quick "max events" engine_max_events;
          quick "rejects past times" engine_rejects_past;
          quick "cascading events" engine_cascading_events;
          quick "drain" engine_drain;
          quick "deterministic replay" engine_deterministic_replay;
          QCheck_alcotest.to_alcotest prop_engine_executes_in_time_order;
        ] );
      ( "periodic",
        [
          quick "fires to horizon" periodic_every_fires_to_horizon;
          quick "first tick one period in" periodic_every_respects_start;
          quick "never fires past horizon" periodic_every_never_fires_past_horizon;
          quick "poisson rate" periodic_poisson_rate;
          quick "countdown" periodic_countdown;
          quick "rejects bad config" periodic_rejects;
        ] );
      ( "latency",
        [
          quick "constant" latency_constant;
          quick "uniform range" latency_uniform_range;
          quick "exponential mean" latency_exponential_positive_mean;
          quick "rejects bad models" latency_rejects;
        ] );
      ( "trace",
        [
          quick "records formatted entries" trace_records;
          quick "level filter" trace_level_filter;
          quick "bounded capacity" trace_capacity;
          quick "dump renders" trace_dump_renders;
          quick "min level can change" trace_level_can_change;
        ] );
    ]
