(* ftr-lint: disable-file R2 test assertions compare small concrete values *)
module Bitset = Ftr_graph.Bitset
module Adjacency = Ftr_graph.Adjacency
module Bfs = Ftr_graph.Bfs

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let bitset_set_get_clear () =
  let b = Bitset.create 100 in
  Alcotest.(check bool) "initially clear" false (Bitset.get b 37);
  Bitset.set b 37;
  Alcotest.(check bool) "set" true (Bitset.get b 37);
  Alcotest.(check bool) "neighbour untouched" false (Bitset.get b 38);
  Bitset.clear b 37;
  Alcotest.(check bool) "cleared" false (Bitset.get b 37)

let bitset_count () =
  let b = Bitset.create 1000 in
  List.iter (Bitset.set b) [ 0; 7; 8; 63; 64; 999 ];
  Alcotest.(check int) "count" 6 (Bitset.count b);
  Bitset.clear b 8;
  Alcotest.(check int) "count after clear" 5 (Bitset.count b)

let bitset_fill () =
  let b = Bitset.create 77 in
  Bitset.fill b true;
  Alcotest.(check int) "all set" 77 (Bitset.count b);
  Alcotest.(check bool) "last bit" true (Bitset.get b 76);
  Bitset.fill b false;
  Alcotest.(check int) "all clear" 0 (Bitset.count b)

let bitset_fill_padding_exact () =
  (* Sizes that are not multiples of 8 must not count padding bits. *)
  List.iter
    (fun n ->
      let b = Bitset.create n in
      Bitset.fill b true;
      Alcotest.(check int) (Printf.sprintf "size %d" n) n (Bitset.count b))
    [ 1; 7; 8; 9; 15; 16; 17; 63; 65 ]

let bitset_assign_copy () =
  let b = Bitset.create 10 in
  Bitset.assign b 3 true;
  let c = Bitset.copy b in
  Bitset.assign b 3 false;
  Alcotest.(check bool) "copy unaffected" true (Bitset.get c 3);
  Alcotest.(check bool) "original cleared" false (Bitset.get b 3)

let bitset_iter_set () =
  let b = Bitset.create 20 in
  List.iter (Bitset.set b) [ 2; 5; 19 ];
  let acc = ref [] in
  Bitset.iter_set b (fun i -> acc := i :: !acc);
  Alcotest.(check (list int)) "iterates in order" [ 2; 5; 19 ] (List.rev !acc)

let bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.get b 10))

(* ------------------------------------------------------------------ *)
(* Adjacency                                                           *)
(* ------------------------------------------------------------------ *)

let path_graph n =
  Adjacency.of_arrays
    (Array.init n (fun u ->
         Array.of_list ((if u > 0 then [ u - 1 ] else []) @ if u < n - 1 then [ u + 1 ] else [])))

let adjacency_of_edges () =
  let g = Adjacency.of_edges ~n:4 [ (0, 1); (1, 2); (0, 3) ] in
  Alcotest.(check int) "size" 4 (Adjacency.size g);
  Alcotest.(check int) "edges" 3 (Adjacency.edge_count g);
  Alcotest.(check bool) "0->1" true (Adjacency.mem_edge g 0 1);
  Alcotest.(check bool) "1->0 absent (directed)" false (Adjacency.mem_edge g 1 0);
  Alcotest.(check (array int)) "out of 0" [| 1; 3 |] (Adjacency.neighbors g 0)

let adjacency_reverse () =
  let g = Adjacency.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let r = Adjacency.reverse g in
  Alcotest.(check bool) "reversed edge" true (Adjacency.mem_edge r 1 0);
  Alcotest.(check bool) "reversed edge 2" true (Adjacency.mem_edge r 2 1);
  Alcotest.(check int) "edge count preserved" 2 (Adjacency.edge_count r)

let adjacency_degree_summary () =
  let g = Adjacency.of_edges ~n:3 [ (0, 1); (0, 2); (1, 2) ] in
  let lo, hi, mean = Adjacency.degree_summary g in
  Alcotest.(check int) "min degree" 0 lo;
  Alcotest.(check int) "max degree" 2 hi;
  Alcotest.(check (float 1e-9)) "mean degree" 1.0 mean

let adjacency_validates () =
  Alcotest.check_raises "edge out of range"
    (Invalid_argument "Adjacency.of_edges: out of range") (fun () ->
      ignore (Adjacency.of_edges ~n:2 [ (0, 5) ]))

let adjacency_iter_edges () =
  let g = Adjacency.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  let count = ref 0 in
  Adjacency.iter_edges g (fun _ _ -> incr count);
  Alcotest.(check int) "visits every edge" 3 !count

(* ------------------------------------------------------------------ *)
(* BFS                                                                 *)
(* ------------------------------------------------------------------ *)

let bfs_path_distances () =
  let g = path_graph 10 in
  let d = Bfs.distances g ~src:0 in
  Array.iteri (fun i dist -> Alcotest.(check int) (Printf.sprintf "node %d" i) i dist) d

let bfs_unreachable () =
  let g = Adjacency.of_edges ~n:4 [ (0, 1) ] in
  let d = Bfs.distances g ~src:0 in
  Alcotest.(check int) "reached" 1 d.(1);
  Alcotest.(check int) "unreached" (-1) d.(2);
  Alcotest.(check int) "reachable count" 2 (Bfs.reachable_count g ~src:0)

let bfs_strong_connectivity () =
  Alcotest.(check bool) "path graph strongly connected" true
    (Bfs.is_strongly_connected (path_graph 20));
  let one_way = Adjacency.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "one-way chain is not" false (Bfs.is_strongly_connected one_way)

let bfs_eccentricity () =
  Alcotest.(check int) "end of path" 9 (Bfs.eccentricity (path_graph 10) ~src:0);
  Alcotest.(check int) "middle of path" 5 (Bfs.eccentricity (path_graph 10) ~src:5)

let bfs_components () =
  let g = Adjacency.of_edges ~n:6 [ (0, 1); (2, 3); (3, 4) ] in
  let count, labels = Bfs.weakly_connected_components g in
  Alcotest.(check int) "three components" 3 count;
  Alcotest.(check bool) "0 and 1 together" true (labels.(0) = labels.(1));
  Alcotest.(check bool) "2,3,4 together" true (labels.(2) = labels.(3) && labels.(3) = labels.(4));
  Alcotest.(check bool) "5 alone" true (labels.(5) <> labels.(0) && labels.(5) <> labels.(2))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset set/get roundtrip" ~count:300
    QCheck.(pair (int_range 1 200) (list_of_size (Gen.int_range 0 50) (int_range 0 1000)))
    (fun (n, idxs) ->
      let b = Bitset.create n in
      let valid = List.filter (fun i -> i < n) idxs in
      List.iter (Bitset.set b) valid;
      List.for_all (Bitset.get b) valid
      && Bitset.count b = List.length (List.sort_uniq compare valid))

let prop_bfs_triangle =
  QCheck.Test.make ~name:"bfs distances satisfy edge relaxation" ~count:100
    QCheck.(int_range 2 30)
    (fun n ->
      let g = path_graph n in
      let d = Bfs.distances g ~src:0 in
      let ok = ref true in
      Adjacency.iter_edges g (fun u v ->
          if d.(u) >= 0 && d.(v) >= 0 && d.(v) > d.(u) + 1 then ok := false);
      !ok)

let prop_reverse_involution =
  QCheck.Test.make ~name:"reverse twice preserves edges" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 40) (pair (int_range 0 9) (int_range 0 9)))
    (fun edges ->
      let g = Adjacency.of_edges ~n:10 edges in
      let rr = Adjacency.reverse (Adjacency.reverse g) in
      let ok = ref true in
      Adjacency.iter_edges g (fun u v -> if not (Adjacency.mem_edge rr u v) then ok := false);
      !ok && Adjacency.edge_count rr = Adjacency.edge_count g)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "graph"
    [
      ( "bitset",
        [
          quick "set/get/clear" bitset_set_get_clear;
          quick "count" bitset_count;
          quick "fill" bitset_fill;
          quick "fill respects padding" bitset_fill_padding_exact;
          quick "assign and copy" bitset_assign_copy;
          quick "iter_set order" bitset_iter_set;
          quick "bounds checking" bitset_bounds;
        ] );
      ( "adjacency",
        [
          quick "of_edges" adjacency_of_edges;
          quick "reverse" adjacency_reverse;
          quick "degree summary" adjacency_degree_summary;
          quick "validates ranges" adjacency_validates;
          quick "iter_edges" adjacency_iter_edges;
        ] );
      ( "bfs",
        [
          quick "path distances" bfs_path_distances;
          quick "unreachable nodes" bfs_unreachable;
          quick "strong connectivity" bfs_strong_connectivity;
          quick "eccentricity" bfs_eccentricity;
          quick "weak components" bfs_components;
        ] );
      ( "properties",
        List.map (fun p -> QCheck_alcotest.to_alcotest p)
          [ prop_bitset_roundtrip; prop_bfs_triangle; prop_reverse_involution ] );
    ]
