module Ac = Ftr_core.Aggregate_chain
module Summary = Ftr_stats.Summary
module Rng = Ftr_prng.Rng

let rng () = Rng.of_int 314159

(* ------------------------------------------------------------------ *)
(* Distribution construction                                           *)
(* ------------------------------------------------------------------ *)

let sample_contains_one () =
  let dist = Ac.harmonic ~links:4 ~max_offset:256 in
  let r = rng () in
  for _ = 1 to 500 do
    let d = Ac.sample_positive dist r in
    Alcotest.(check bool) "contains 1" true (Array.mem 1 d);
    Array.iteri (fun i v -> if i > 0 then Alcotest.(check bool) "ascending" true (v > d.(i - 1)))
      d
  done

let mean_size_matches_samples () =
  let dist = Ac.harmonic ~links:4 ~max_offset:256 in
  let r = rng () in
  let s = Summary.create () in
  for _ = 1 to 20_000 do
    (* sample_positive returns one side; |∆| counts both. *)
    Summary.add_int s (2 * Array.length (Ac.sample_positive dist r))
  done;
  let expected = Ac.mean_size dist in
  Alcotest.(check bool)
    (Printf.sprintf "sampled %.2f vs expected %.2f" (Summary.mean s) expected)
    true
    (abs_float (Summary.mean s -. expected) < 0.2)

let harmonic_mean_size_tracks_links () =
  (* About `links` long offsets per side, plus the mandatory ±1. *)
  let dist = Ac.harmonic ~links:6 ~max_offset:1024 in
  let m = Ac.mean_size dist in
  Alcotest.(check bool) (Printf.sprintf "mean size %.2f" m) true (m > 10.0 && m < 16.0)

(* ------------------------------------------------------------------ *)
(* Chain dynamics                                                      *)
(* ------------------------------------------------------------------ *)

let single_point_absorbs () =
  let dist = Ac.harmonic ~links:3 ~max_offset:1023 in
  let r = rng () in
  for _ = 1 to 50 do
    let steps = Ac.simulate_single_point dist r ~start:1023 in
    Alcotest.(check bool) "positive and finite" true (steps > 0 && steps <= 1023)
  done;
  Alcotest.(check int) "start 0 needs no steps" 0 (Ac.simulate_single_point dist r ~start:0)

let aggregate_absorbs () =
  let dist = Ac.harmonic ~links:3 ~max_offset:1023 in
  let r = rng () in
  for _ = 1 to 50 do
    let steps = Ac.simulate_aggregate dist r ~start:1023 in
    Alcotest.(check bool) "positive and finite" true (steps > 0 && steps <= 1023)
  done

(* Lemma 4: the aggregate chain and the uniform-start single-point chain
   have the same absorption-time distribution; compare the means. *)
let lemma4_means_agree () =
  let n = 512 in
  let dist = Ac.harmonic ~links:3 ~max_offset:n in
  let r = rng () in
  let single = Summary.create () in
  for _ = 1 to 3000 do
    Summary.add_int single (Ac.simulate_single_point dist r ~start:(1 + Rng.int r n))
  done;
  let aggregate = Ac.mean_aggregate dist r ~start:n ~trials:3000 in
  let ms = Summary.mean single and ma = Summary.mean aggregate in
  Alcotest.(check bool)
    (Printf.sprintf "single %.2f vs aggregate %.2f" ms ma)
    true
    (abs_float (ms -. ma) < 0.15 *. ms)

(* Lemma 4, distribution-level: the two absorption-time samples should be
   indistinguishable under a two-sample KS test, not just equal in mean. *)
let lemma4_distributions_agree () =
  let n = 512 in
  let dist = Ac.harmonic ~links:3 ~max_offset:n in
  let r = rng () in
  let trials = 3000 in
  let single =
    Array.init trials (fun _ ->
        float_of_int (Ac.simulate_single_point dist r ~start:(1 + Rng.int r n)))
  in
  let aggregate =
    Array.init trials (fun _ -> float_of_int (Ac.simulate_aggregate dist r ~start:n))
  in
  let ks = Ftr_stats.Gof.ks_two_sample single aggregate in
  (* 5% critical value for n = m = 3000 is ~0.035; allow slack. *)
  Alcotest.(check bool) (Printf.sprintf "KS %.4f small" ks) true (ks < 0.06)

(* Lemma 6: Pr[|S'| <= |S|/a] <= 3 l / a. *)
let lemma6_bound_holds () =
  let links = 3 in
  let dist = Ac.harmonic ~links ~max_offset:4096 in
  let r = rng () in
  let ell = Ac.mean_size dist in
  List.iter
    (fun a ->
      List.iter
        (fun k ->
          let p = Ac.lemma6_drop_probability dist r ~k ~a ~trials:4000 in
          let bound = 3.0 *. ell /. a in
          (* Allow 3-sigma sampling slack on top of the proven bound. *)
          let slack = 3.0 *. sqrt (p *. (1.0 -. p) /. 4000.0) +. 0.01 in
          Alcotest.(check bool)
            (Printf.sprintf "k=%d a=%.0f: %.4f <= %.4f" k a p bound)
            true (p <= bound +. slack))
        [ 64; 512; 4096 ])
    [ 8.0; 32.0; 128.0 ]

(* The simulated one-sided time respects the Theorem 10 lower bound. *)
let lower_bound_respected () =
  let n = 8192 and links = 3 in
  let dist = Ac.harmonic ~links ~max_offset:(n - 1) in
  let r = rng () in
  let s = Summary.create () in
  for _ = 1 to 500 do
    Summary.add_int s (Ac.simulate_single_point dist r ~start:(1 + Rng.int r n))
  done;
  let measured = Summary.mean s in
  let ell = int_of_float (Float.ceil (Ac.mean_size dist)) in
  let bound = Ftr_core.Theory.lower_one_sided ~links:ell n in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.2f >= bound %.2f" measured bound)
    true (measured >= bound)

(* More offsets means faster absorption. *)
let more_links_faster () =
  let n = 4096 in
  let r = rng () in
  let mean links =
    let dist = Ac.harmonic ~links ~max_offset:n in
    Summary.mean (Ac.mean_single_point dist r ~start:n ~trials:500)
  in
  let slow = mean 1 and fast = mean 8 in
  Alcotest.(check bool) (Printf.sprintf "l=8 (%.1f) < l=1 (%.1f)" fast slow) true (fast < slow)

(* The harmonic distribution beats a uniform distribution of the same
   expected size — the heart of the paper's point about link choices. *)
let harmonic_beats_uniform () =
  let n = 8192 and links = 4 in
  let r = rng () in
  let harmonic = Ac.harmonic ~links ~max_offset:n in
  let uniform = Ac.uniform ~links ~max_offset:n in
  let mean dist = Summary.mean (Ac.mean_single_point dist r ~start:n ~trials:400) in
  let h = mean harmonic and u = mean uniform in
  Alcotest.(check bool) (Printf.sprintf "harmonic %.1f < uniform %.1f" h u) true (h < u)

(* Two-sided routing at least as fast as one-sided, and still above its
   (weaker) Theorem 10 bound. *)
let two_sided_faster_but_bounded () =
  let n = 4096 and links = 3 in
  let dist = Ac.harmonic ~links ~max_offset:n in
  let r = rng () in
  let one = Summary.create () and two = Summary.create () in
  for _ = 1 to 400 do
    let start = 1 + Rng.int r n in
    Summary.add_int one (Ac.simulate_single_point dist r ~start);
    Summary.add_int two (Ac.simulate_two_sided dist r ~start)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "two-sided %.1f <= one-sided %.1f" (Summary.mean two) (Summary.mean one))
    true
    (Summary.mean two <= Summary.mean one);
  let ell = int_of_float (Float.ceil (Ac.mean_size dist)) in
  let bound = Ftr_core.Theory.lower_two_sided ~links:ell n in
  Alcotest.(check bool)
    (Printf.sprintf "two-sided %.1f >= bound %.2f" (Summary.mean two) bound)
    true
    (Summary.mean two >= bound)

let two_sided_absorbs () =
  let dist = Ac.harmonic ~links:2 ~max_offset:511 in
  let r = rng () in
  for _ = 1 to 50 do
    let steps = Ac.simulate_two_sided dist r ~start:511 in
    Alcotest.(check bool) "positive and finite" true (steps > 0 && steps <= 511)
  done;
  Alcotest.(check int) "start 0 needs no steps" 0 (Ac.simulate_two_sided dist r ~start:0)

let sample_full_has_both_units () =
  let dist = Ac.harmonic ~links:3 ~max_offset:128 in
  let r = rng () in
  for _ = 1 to 200 do
    let d = Ac.sample_full dist r in
    Alcotest.(check bool) "has +1" true (Array.mem 1 d);
    Alcotest.(check bool) "has -1" true (Array.mem (-1) d);
    Array.iteri
      (fun i v -> if i > 0 then Alcotest.(check bool) "sorted" true (v > d.(i - 1)))
      d
  done

(* The O(log n) inverse-transform samplers must agree with the literal
   Bernoulli-per-offset model. Compare the fast simulation against a slow
   reference built from sample_positive. *)
let fast_sampler_matches_bernoulli_reference () =
  let n = 512 and links = 3 in
  let dist = Ac.harmonic ~links ~max_offset:n in
  let r = rng () in
  let slow_step x =
    let delta = Ac.sample_positive dist r in
    let best = ref 1 in
    Array.iter (fun d -> if d <= x && d > !best then best := d) delta;
    x - !best
  in
  let slow_simulate start =
    let steps = ref 0 and x = ref start in
    while !x > 0 do
      x := slow_step !x;
      incr steps
    done;
    !steps
  in
  let slow = Summary.create () and fast = Summary.create () in
  for _ = 1 to 2000 do
    let start = 1 + Rng.int r n in
    Summary.add_int slow (slow_simulate start);
    Summary.add_int fast (Ac.simulate_single_point dist r ~start)
  done;
  let ms = Summary.mean slow and mf = Summary.mean fast in
  Alcotest.(check bool)
    (Printf.sprintf "slow %.2f vs fast %.2f" ms mf)
    true
    (abs_float (ms -. mf) < 0.1 *. ms)

let make_rejects () =
  Alcotest.check_raises "bad max_offset"
    (Invalid_argument "Aggregate_chain.make: max_offset must be >= 1") (fun () ->
      ignore (Ac.make ~max_offset:0 ~p:(fun _ -> 0.5)))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_single_point_bounded =
  QCheck.Test.make ~name:"single-point steps bounded by start" ~count:100
    QCheck.(pair (int_range 1 512) small_int)
    (fun (start, seed) ->
      let dist = Ac.harmonic ~links:2 ~max_offset:512 in
      let steps = Ac.simulate_single_point dist (Rng.of_int seed) ~start in
      steps >= 1 && steps <= start)

let prop_aggregate_bounded =
  QCheck.Test.make ~name:"aggregate steps bounded by start" ~count:100
    QCheck.(pair (int_range 1 512) small_int)
    (fun (start, seed) ->
      let dist = Ac.harmonic ~links:2 ~max_offset:512 in
      let steps = Ac.simulate_aggregate dist (Rng.of_int seed) ~start in
      steps >= 1 && steps <= start)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "aggregate_chain"
    [
      ( "distribution",
        [
          quick "samples contain 1 and sorted" sample_contains_one;
          quick "mean size matches samples" mean_size_matches_samples;
          quick "harmonic mean size tracks links" harmonic_mean_size_tracks_links;
          quick "make rejects bad input" make_rejects;
        ] );
      ( "dynamics",
        [
          quick "single point absorbs" single_point_absorbs;
          quick "aggregate absorbs" aggregate_absorbs;
          quick "Lemma 4: chains agree" lemma4_means_agree;
          quick "Lemma 4: whole distributions agree (KS)" lemma4_distributions_agree;
          quick "Lemma 6: drop probability bounded" lemma6_bound_holds;
          quick "Theorem 10 lower bound respected" lower_bound_respected;
          quick "more links faster" more_links_faster;
          quick "harmonic beats uniform" harmonic_beats_uniform;
          quick "two-sided faster but bounded" two_sided_faster_but_bounded;
          quick "two-sided absorbs" two_sided_absorbs;
          quick "full samples contain both units" sample_full_has_both_units;
          quick "fast sampler matches bernoulli reference" fast_sampler_matches_bernoulli_reference;
        ] );
      ( "properties",
        List.map (fun p -> QCheck_alcotest.to_alcotest p) [ prop_single_point_bounded; prop_aggregate_bounded ]
      );
    ]
