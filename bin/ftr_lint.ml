(* ftr_lint: the project static analyzer (docs/LINTING.md). Wired into
   `dune build @lint` alongside the runtime sanitizer battery; rules R1-R5
   live in lib/lint.

     ftr_lint [DIR|FILE ...] [--baseline FILE] [--write-baseline FILE]
              [--json FILE] [--quiet]

   Exit status: 0 clean (modulo baseline), 1 findings, 2 usage or parse
   error. *)

let () =
  let dirs = ref [] in
  let baseline = ref None in
  let write_baseline = ref None in
  let json = ref None in
  let quiet = ref false in
  let usage = "usage: ftr_lint [DIR|FILE ...] [options]" in
  let spec =
    [
      ( "--baseline",
        Arg.String (fun p -> baseline := Some p),
        "FILE tolerate the findings recorded in FILE (see docs/LINTING.md)" );
      ( "--write-baseline",
        Arg.String (fun p -> write_baseline := Some p),
        "FILE record every current finding into FILE and exit 0" );
      ("--json", Arg.String (fun p -> json := Some p), "FILE also write a JSON report to FILE");
      ("--quiet", Arg.Set quiet, " print only the summary line, not each finding");
    ]
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  let dirs = match List.rev !dirs with [] -> [ "lib"; "bin"; "bench" ] | l -> l in
  exit
    (Ftr_lint.Driver.run ?baseline:!baseline ?write_baseline:!write_baseline ?json:!json
       ~quiet:!quiet ~dirs ())
