(* ftr_lint: the project static analyzer (docs/LINTING.md). Wired into
   `dune build @lint` alongside the runtime sanitizer battery; the
   syntactic rules R1-R5 and the typed interprocedural rules T1-T4 live
   in lib/lint.

     ftr_lint [DIR|FILE ...] [--stage syntactic|typed|all] [--typed]
              [--baseline FILE] [--update-baseline] [--write-baseline FILE]
              [--json FILE] [--quiet]

   The typed stage reads the .cmt files a prior `dune build` produced
   (under the scanned directories in a build context, or under
   _build/default from a checkout).

   Exit status: 0 clean (modulo baseline), 1 findings, 2 usage or parse
   error. *)

let () =
  let dirs = ref [] in
  let baseline = ref None in
  let write_baseline = ref None in
  let update_baseline = ref false in
  let json = ref None in
  let quiet = ref false in
  let stages = ref [ Ftr_lint.Finding.Syntactic ] in
  let usage = "usage: ftr_lint [DIR|FILE ...] [options]" in
  let set_stage = function
    | "syntactic" -> stages := [ Ftr_lint.Finding.Syntactic ]
    | "typed" -> stages := [ Ftr_lint.Finding.Typed ]
    | "all" -> stages := [ Ftr_lint.Finding.Syntactic; Ftr_lint.Finding.Typed ]
    | s ->
        Printf.eprintf "ftr_lint: unknown stage %S (expected syntactic, typed or all)\n" s;
        exit 2
  in
  let spec =
    [
      ( "--stage",
        Arg.String set_stage,
        "STAGE run `syntactic` (R1-R5, default), `typed` (T1-T4 over .cmt files) or `all`" );
      ("--typed", Arg.Unit (fun () -> set_stage "typed"), " shorthand for --stage typed");
      ( "--baseline",
        Arg.String (fun p -> baseline := Some p),
        "FILE tolerate the findings recorded in FILE (see docs/LINTING.md)" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        " regenerate the --baseline file from current findings of the selected stages" );
      ( "--write-baseline",
        Arg.String (fun p -> write_baseline := Some p),
        "FILE record current findings of the selected stages into FILE and exit 0" );
      ("--json", Arg.String (fun p -> json := Some p), "FILE also write a JSON report to FILE");
      ("--quiet", Arg.Set quiet, " print only the summary line, not each finding");
    ]
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  let dirs = match List.rev !dirs with [] -> [ "lib"; "bin"; "bench" ] | l -> l in
  let write_baseline =
    match (!write_baseline, !update_baseline) with
    | Some p, _ -> Some p (* explicit target wins *)
    | None, true -> Some (Option.value ~default:"lint.baseline" !baseline)
    | None, false -> None
  in
  exit
    (Ftr_lint.Driver.run ?baseline:!baseline ?write_baseline ?json:!json ~quiet:!quiet
       ~stages:!stages ~dirs ())
