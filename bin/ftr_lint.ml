(* ftr_lint: the project static analyzer (docs/LINTING.md). Wired into
   `dune build @lint` alongside the runtime sanitizer battery; the
   syntactic rules R1-R5, the typed interprocedural rules T1-T4 and the
   flow-sensitive rules D1-D4 live in lib/lint.

     ftr_lint [DIR|FILE ...] [--stage syntactic|typed|flow|all]
              [--typed] [--flow] [--jobs N] [--cache DIR]
              [--profile default|test]
              [--baseline FILE] [--update-baseline] [--write-baseline FILE]
              [--json FILE] [--timings] [--quiet]

   The typed and flow stages read the .cmt files a prior `dune build`
   produced (under the scanned directories in a build context, or under
   _build/default from a checkout). The flow stage fans per-unit
   analysis out over Ftr_exec.Pool (--jobs, FTR_EXEC_SEQ honoured) and
   caches per-unit results keyed by .cmt digest + analyzer version
   (--cache DIR).

   Exit status: 0 clean (modulo baseline), 1 findings, 2 usage or parse
   error. *)

let () =
  let dirs = ref [] in
  let baseline = ref None in
  let write_baseline = ref None in
  let update_baseline = ref false in
  let json = ref None in
  let quiet = ref false in
  let timings = ref false in
  let jobs = ref None in
  let cache_dir = ref None in
  let profile_test = ref false in
  let stages = ref [ Ftr_lint.Finding.Syntactic ] in
  let usage = "usage: ftr_lint [DIR|FILE ...] [options]" in
  let set_stage = function
    | "syntactic" -> stages := [ Ftr_lint.Finding.Syntactic ]
    | "typed" -> stages := [ Ftr_lint.Finding.Typed ]
    | "flow" -> stages := [ Ftr_lint.Finding.Flow ]
    | "all" ->
        stages := [ Ftr_lint.Finding.Syntactic; Ftr_lint.Finding.Typed; Ftr_lint.Finding.Flow ]
    | s ->
        Printf.eprintf
          "ftr_lint: unknown stage %S (expected syntactic, typed, flow or all)\n%s\n" s usage;
        exit 2
  in
  let set_profile = function
    | "default" -> profile_test := false
    | "test" -> profile_test := true
    | s ->
        Printf.eprintf "ftr_lint: unknown profile %S (expected default or test)\n%s\n" s usage;
        exit 2
  in
  let spec =
    [
      ( "--stage",
        Arg.String set_stage,
        "STAGE run `syntactic` (R1-R5, default), `typed` (T1-T4), `flow` (D1-D4) or `all`" );
      ("--typed", Arg.Unit (fun () -> set_stage "typed"), " shorthand for --stage typed");
      ("--flow", Arg.Unit (fun () -> set_stage "flow"), " shorthand for --stage flow");
      ( "--jobs",
        Arg.Int (fun n -> jobs := Some n),
        "N flow-stage worker domains (default: pool default; FTR_EXEC_SEQ=1 forces sequential)"
      );
      ( "--cache",
        Arg.String (fun d -> cache_dir := Some d),
        "DIR incremental flow-stage cache keyed by .cmt digest + analyzer version" );
      ( "--profile",
        Arg.String set_profile,
        "PROFILE `default`, or `test` (R1/T2 tolerated — tests drive clocks and randomness)" );
      ( "--baseline",
        Arg.String (fun p -> baseline := Some p),
        "FILE tolerate the findings recorded in FILE (see docs/LINTING.md)" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        " regenerate the --baseline file from current findings of the selected stages" );
      ( "--write-baseline",
        Arg.String (fun p -> write_baseline := Some p),
        "FILE record current findings of the selected stages into FILE and exit 0" );
      ("--json", Arg.String (fun p -> json := Some p), "FILE also write a JSON report to FILE");
      ( "--timings",
        Arg.Set timings,
        " include per-stage wall time in the JSON report (off by default: lint.json stays \
         byte-identical run to run)" );
      ("--quiet", Arg.Set quiet, " print only the summary line, not each finding");
    ]
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  let dirs = match List.rev !dirs with [] -> [ "lib"; "bin"; "bench" ] | l -> l in
  let write_baseline =
    match (!write_baseline, !update_baseline) with
    | Some p, _ -> Some p (* explicit target wins *)
    | None, true -> Some (Option.value ~default:"lint.baseline" !baseline)
    | None, false -> None
  in
  exit
    (Ftr_lint.Driver.run ?baseline:!baseline ?write_baseline ?json:!json ~quiet:!quiet
       ~stages:!stages ?jobs:!jobs ?cache_dir:!cache_dir ~profile_test:!profile_test
       ~timings:!timings ~dirs ())
