(* p2psim — command-line driver for every experiment in the reproduction.

     dune exec bin/p2psim.exe -- route --nodes 4096 --src 17 --dst 3967
     dune exec bin/p2psim.exe -- figure5 --nodes 4096 --links 12
     dune exec bin/p2psim.exe -- figure6 --nodes 16384
     dune exec bin/p2psim.exe -- figure7
     dune exec bin/p2psim.exe -- table1
     dune exec bin/p2psim.exe -- adversary
     dune exec bin/p2psim.exe -- byzantine
     dune exec bin/p2psim.exe -- recovery --kill 0.3
     dune exec bin/p2psim.exe -- anatomy
     dune exec bin/p2psim.exe -- dht --replicas 3 --fail 0.3
     dune exec bin/p2psim.exe -- churn --duration 2000 *)

module E = Ftr_core.Experiment
module Network = Ftr_core.Network
module Route = Ftr_core.Route
module Theory = Ftr_core.Theory
module Rng = Ftr_prng.Rng
open Cmdliner

(* Shared options *)

let seed_t =
  Arg.(value & opt int 2002 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed (reproducible).")

let n_t default =
  Arg.(
    value & opt int default
    & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes on the line.")

let links_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "links" ] ~docv:"L" ~doc:"Long links per node (default: lg N).")

let networks_t default =
  Arg.(
    value & opt int default
    & info [ "networks" ] ~docv:"K" ~doc:"Independent networks to average over.")

let messages_t default =
  Arg.(
    value & opt int default
    & info [ "messages" ] ~docv:"M" ~doc:"Messages routed per network and data point.")

let resolve_links n = function Some l -> l | None -> int_of_float (Theory.lg n)

let json_t =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit machine-readable JSON instead of the human-readable table.")

let strategy_of_string = function
  | "terminate" -> Route.Terminate
  | "reroute" -> Route.Random_reroute { attempts = 1 }
  | "backtrack" -> Route.Backtrack { history = 5 }
  | s -> failwith (Printf.sprintf "unknown strategy %S" s)

(* route *)

let route_cmd =
  let run n links seed src dst fraction strategy json =
    let links = resolve_links n links in
    let rng = Rng.of_int seed in
    let net = Network.build_ideal ~n ~links rng in
    let src = ((src mod n) + n) mod n and dst = ((dst mod n) + n) mod n in
    let strategy = strategy_of_string strategy in
    let failures, live_guard =
      if fraction > 0.0 then begin
        let mask = Ftr_core.Failure.random_node_fraction rng ~n ~fraction in
        (Ftr_core.Failure.of_node_mask mask, fun v -> Ftr_graph.Bitset.get mask v)
      end
      else (Ftr_core.Failure.none, fun _ -> true)
    in
    if not (live_guard src && live_guard dst) then
      if json then
        print_endline
          (Ftr_obs.Json.to_string
             (Ftr_obs.Json.Obj
                [ ("error", Ftr_obs.Json.String "endpoint fell in the failed set") ]))
      else print_endline "an endpoint fell in the failed set; rerun with another --seed"
    else begin
      let outcome, path = Route.route_path ~failures ~strategy ~rng net ~src ~dst in
      if json then begin
        let open Ftr_obs.Json in
        let extra =
          match outcome with
          | Route.Delivered _ -> []
          | Route.Failed { stuck_at; reason; _ } ->
              [ ("stuck_at", Int stuck_at); ("reason", String (Route.reason_label reason)) ]
        in
        print_endline
          (to_string
             (Obj
                ([
                   ("delivered", Bool (Route.delivered outcome));
                   ("hops", Int (Route.hops outcome));
                   ("loop_erased", Int (Route.loop_erased_length path));
                   ("path", List (List.map (fun v -> Int v) path));
                 ]
                @ extra)))
      end
      else begin
        (match outcome with
        | Route.Delivered { hops } ->
            Printf.printf "delivered in %d hops (loop-erased path: %d)\n" hops
              (Route.loop_erased_length path)
        | Route.Failed { hops; stuck_at; _ } ->
            Printf.printf "FAILED after %d hops, stuck at node %d\n" hops stuck_at);
        Printf.printf "route: %s\n" (String.concat " -> " (List.map string_of_int path))
      end
    end
  in
  let src_t = Arg.(value & opt int 0 & info [ "src" ] ~docv:"SRC" ~doc:"Source node.") in
  let dst_t = Arg.(value & opt int (-1) & info [ "dst" ] ~docv:"DST" ~doc:"Destination node.") in
  let fraction_t =
    Arg.(
      value & opt float 0.0
      & info [ "fail" ] ~docv:"P" ~doc:"Fraction of nodes to fail before routing.")
  in
  let strategy_t =
    Arg.(
      value & opt string "backtrack"
      & info [ "strategy" ] ~docv:"S" ~doc:"terminate | reroute | backtrack.")
  in
  Cmd.v
    (Cmd.info "route" ~doc:"Route one message and print the route it took")
    Term.(
      const run $ n_t 4096 $ links_t $ seed_t $ src_t $ dst_t $ fraction_t $ strategy_t $ json_t)

(* explain *)

let explain_cmd =
  let run n links seed fraction strategy route_ix jobs json chrome_path =
    if route_ix < 0 then begin
      Printf.eprintf "p2psim explain: --route must be non-negative\n";
      exit 2
    end;
    let links = resolve_links n links in
    let strategy = strategy_of_string strategy in
    (* Telemetry and the flight recorder forced on, from a clean slate.
       Trace identity derives from (seed, route index) — no clocks, no
       worker identity — so the rendered trace is byte-identical on
       re-runs and across --jobs counts. *)
    Ftr_obs.Flag.set_mode true;
    Ftr_obs.Metrics.reset Ftr_obs.Metrics.default;
    Ftr_obs.Span.reset ();
    Ftr_obs.Events.reset ();
    Ftr_obs.Tracing.reset ();
    Ftr_obs.Tracing.set_seed seed;
    Ftr_obs.Tracing.force_full true;
    let rng = Rng.of_int seed in
    let net = Network.build_ideal ~n ~links rng in
    let failures, alive =
      if fraction > 0.0 then begin
        let mask = Ftr_core.Failure.random_node_fraction rng ~n ~fraction in
        (Ftr_core.Failure.of_node_mask mask, fun v -> Ftr_graph.Bitset.get mask v)
      end
      else (Ftr_core.Failure.none, fun _ -> true)
    in
    (* Route [i]'s endpoints and recovery randomness are a pure function
       of (seed, i) through the sweep derivation scheme (Seed.rng_for),
       so route K is the same route whether the preceding routes replayed
       on one worker domain or four. *)
    let route_one index =
      let rng = Ftr_exec.Seed.rng_for ~seed ~index in
      let rec pick tries =
        if tries > 100_000 then
          failwith "explain: found no live endpoint pair; lower --fail or change --seed"
        else begin
          let src = Rng.int rng n and dst = Rng.int rng n in
          if src <> dst && alive src && alive dst then (src, dst) else pick (tries + 1)
        end
      in
      let src, dst = pick 0 in
      (src, dst, Route.route ~failures ~strategy ~rng net ~src ~dst)
    in
    (* Routes 0..K-1 replay with recording off: worker domains suppress
       telemetry anyway, and the coordinator must match them so the route
       under the microscope is the only trace in the ring wherever the
       warmups ran. *)
    Ftr_obs.Tracing.set_recording false;
    let warm = Ftr_exec.Pool.map ?jobs ~count:route_ix (fun i -> route_one i) in
    let warm_delivered =
      Array.fold_left (fun acc (_, _, o) -> if Route.delivered o then acc + 1 else acc) 0 warm
    in
    Ftr_obs.Tracing.set_recording true;
    Ftr_obs.Tracing.set_next_index route_ix;
    let src, dst, _outcome = route_one route_ix in
    match Ftr_obs.Tracing.latest () with
    | None ->
        Printf.eprintf "p2psim explain: no trace was recorded\n";
        exit 1
    | Some tr ->
        (match chrome_path with
        | Some path ->
            Out_channel.with_open_text path (fun oc ->
                output_string oc (Ftr_obs.Tracing.chrome_trace_string ~traces:[ tr ] ());
                output_char oc '\n')
        | None -> ());
        if json then print_endline (Ftr_obs.Json.to_string (Ftr_obs.Tracing.to_json tr))
        else begin
          if route_ix > 0 then
            Printf.printf "warmup: routes 0..%d replayed untraced, %d delivered, %d failed\n"
              (route_ix - 1) warm_delivered (route_ix - warm_delivered);
          Printf.printf "route #%d: %d -> %d under %.0f%% node failures\n" route_ix src dst
            (100.0 *. fraction);
          print_string (Ftr_obs.Tracing.render tr)
        end
  in
  let fraction_t =
    Arg.(
      value & opt float 0.3
      & info [ "fail" ] ~docv:"P" ~doc:"Fraction of nodes to fail before routing.")
  in
  let strategy_t =
    Arg.(
      value & opt string "backtrack"
      & info [ "strategy" ] ~docv:"S" ~doc:"terminate | reroute | backtrack.")
  in
  let route_t =
    Arg.(
      value & opt int 0
      & info [ "route" ] ~docv:"K"
          ~doc:
            "Route index to explain: routes 0..K-1 replay untraced, then route K runs with \
             full-fidelity tracing.")
  in
  let jobs_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"J"
          ~doc:"Worker domains for the warmup replay (never changes the output).")
  in
  let chrome_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"PATH"
          ~doc:"Also write the trace as Chrome trace-event JSON (chrome://tracing, Perfetto).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Re-run one route with the flight recorder forced on and print why it went the way \
             it did"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Replays a seeded routing workload up to route $(b,K), then routes pair K with \
              full-fidelity tracing: every candidate neighbour scanned, its distance, the \
              verdict that excluded it (dead link, dead node, already tried, not closer), the \
              chosen edges, and every backtrack or reroute. Output is deterministic: the same \
              seed prints the same bytes whatever $(b,--jobs) is.";
         ])
    Term.(
      const run $ n_t 4096 $ links_t $ seed_t $ fraction_t $ strategy_t $ route_t $ jobs_t
      $ json_t $ chrome_t)

(* figure5 *)

let figure5_cmd =
  let run n links seed networks oldest =
    let links = resolve_links n links in
    let replacement =
      if oldest then Ftr_core.Heuristic.Oldest else Ftr_core.Heuristic.Proportional
    in
    let r = E.figure5 ~replacement ~networks ~n ~links ~seed () in
    Printf.printf "%10s %12s %12s %12s\n" "length" "derived" "ideal" "error";
    List.iter
      (fun p -> Printf.printf "%10d %12.6f %12.6f %+12.6f\n" p.E.length p.E.derived p.E.ideal p.E.error)
      r.E.points;
    Printf.printf "max |error| = %.4f at length %d; total variation = %.4f\n" r.E.max_abs_error
      r.E.max_abs_error_length r.E.total_variation
  in
  let oldest_t =
    Arg.(value & flag & info [ "oldest" ] ~doc:"Use the oldest-link replacement strategy.")
  in
  Cmd.v
    (Cmd.info "figure5" ~doc:"Heuristic link-length distribution vs the ideal 1/d law")
    Term.(const run $ n_t 4096 $ links_t $ seed_t $ networks_t 3 $ oldest_t)

(* figure6 *)

let figure6_cmd =
  let run n links seed networks messages =
    let links = resolve_links n links in
    Printf.printf "%8s | %18s | %18s | %26s\n" "p" "terminate" "re-route" "backtrack(5)";
    Printf.printf "%8s | %8s %9s | %8s %9s | %8s %9s %7s\n" "" "failed" "hops" "failed" "hops"
      "failed" "hops" "path";
    List.iter
      (fun r ->
        Printf.printf "%8.2f | %8.4f %9.2f | %8.4f %9.2f | %8.4f %9.2f %7.2f\n" r.E.fail_fraction
          r.E.terminate.E.failed_fraction r.E.terminate.E.mean_hops
          r.E.reroute.E.failed_fraction r.E.reroute.E.mean_hops
          r.E.backtrack.E.failed_fraction r.E.backtrack.E.mean_hops
          r.E.backtrack.E.mean_path_hops)
      (E.figure6 ~n ~links ~networks ~messages ~seed ())
  in
  Cmd.v
    (Cmd.info "figure6" ~doc:"Failure strategies under a sweep of node-failure fractions")
    Term.(const run $ n_t (1 lsl 14) $ links_t $ seed_t $ networks_t 3 $ messages_t 300)

(* figure7 *)

let figure7_cmd =
  let run n links seed networks messages =
    let links = resolve_links n links in
    Printf.printf "%12s %14s %18s\n" "p(node fail)" "ideal failed" "constructed failed";
    List.iter
      (fun r -> Printf.printf "%12.2f %14.4f %18.4f\n" r.E.death_p r.E.ideal_failed r.E.constructed_failed)
      (E.figure7 ~n ~links ~networks ~messages ~seed ())
  in
  Cmd.v
    (Cmd.info "figure7" ~doc:"Ideal vs heuristically constructed network under failures")
    Term.(const run $ n_t 4096 $ links_t $ seed_t $ networks_t 3 $ messages_t 300)

(* table1 *)

let table1_cmd =
  let run n seed networks messages json =
    let ns = [ n / 64; n / 16; n / 4; n ] in
    let sections =
      [
        ("Theorem 12 (1 link)", E.sweep_single_link ~ns ~networks ~messages ~seed ());
        ( "Theorem 13 (l links)",
          E.sweep_multi_link ~n ~links_list:[ 1; 2; 4; 8 ] ~networks ~messages ~seed () );
        ("Theorem 14 (deterministic)", E.sweep_deterministic ~ns ~base:2 ~messages ~seed ());
        ( "Theorem 15 (link failures)",
          E.sweep_link_failure ~n ~probs:[ 1.0; 0.6; 0.2 ] ~networks ~messages ~seed () );
        ( "Theorem 16 (geometric links)",
          E.sweep_geometric_link_failure ~n ~base:2 ~probs:[ 1.0; 0.6 ] ~networks ~messages
            ~seed () );
        ( "Theorem 17 (binomial nodes)",
          E.sweep_binomial_nodes ~n ~probs:[ 1.0; 0.5 ] ~networks ~messages ~seed () );
        ( "Theorem 18 (node failures)",
          E.sweep_node_failure ~n ~probs:[ 0.0; 0.3; 0.6 ] ~networks ~messages ~seed () );
        ("Theorem 10 (lower bound)", E.sweep_lower_bound ~ns ~links:3 ~trials:300 ~seed ());
      ]
    in
    if json then begin
      let open Ftr_obs.Json in
      let row r =
        Obj
          [
            ("label", String r.E.label);
            ("parameter", Float r.E.parameter);
            ("measured", Float r.E.measured);
            ("bound", Float r.E.bound);
            ("ratio", Float r.E.ratio);
          ]
      in
      print_endline
        (to_string
           (List
              (List.map
                 (fun (header, rows) ->
                   Obj [ ("section", String header); ("rows", List (List.map row rows)) ])
                 sections)))
    end
    else
      List.iter
        (fun (header, rows) ->
          Printf.printf "\n-- %s --\n%24s %12s %12s %12s %8s\n" header "row" "param" "measured"
            "bound" "ratio";
          List.iter
            (fun r ->
              Printf.printf "%24s %12.3f %12.2f %12.2f %8.3f\n" r.E.label r.E.parameter
                r.E.measured r.E.bound r.E.ratio)
            rows)
        sections
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Every Table 1 bound against simulation")
    Term.(const run $ n_t (1 lsl 14) $ seed_t $ networks_t 3 $ messages_t 200 $ json_t)

(* adversary *)

let adversary_cmd =
  let run n seed trials =
    let r = Ftr_core.Adversary.isolation_experiment ~n ~trials ~seed () in
    Printf.printf "adversary budget: %d kills (the structural positions target±2^i)\n"
      r.Ftr_core.Adversary.kills;
    Printf.printf "geometric (Theorem 16) network: %6.4f of searches to the target fail\n"
      r.Ftr_core.Adversary.geometric_failed;
    Printf.printf "randomized 1/d network:         %6.4f of searches to the target fail\n"
      r.Ftr_core.Adversary.random_failed
  in
  let trials_t =
    Arg.(value & opt int 100 & info [ "trials" ] ~docv:"T" ~doc:"Random targets to attack.")
  in
  Cmd.v
    (Cmd.info "adversary"
       ~doc:"Targeted failures (Section 4.3.4.2): deterministic vs random links")
    Term.(const run $ n_t 4096 $ seed_t $ trials_t)

(* byzantine *)

let byzantine_cmd =
  let run n seed networks messages =
    Printf.printf "%10s %12s %12s %12s %14s\n" "byzantine" "naive" "retry" "backtrack"
      "wasted/search";
    List.iter
      (fun r ->
        Printf.printf "%10.2f %12.4f %12.4f %12.4f %14.2f\n"
          r.Ftr_core.Byzantine.byzantine_fraction r.Ftr_core.Byzantine.naive_failed
          r.Ftr_core.Byzantine.retry_failed r.Ftr_core.Byzantine.backtrack_failed
          r.Ftr_core.Byzantine.retry_wasted)
      (Ftr_core.Byzantine.sweep ~n ~networks ~messages ~seed ())
  in
  Cmd.v
    (Cmd.info "byzantine" ~doc:"Blackhole adversary sweep with three defences")
    Term.(const run $ n_t 4096 $ seed_t $ networks_t 3 $ messages_t 150)

(* recovery *)

let recovery_cmd =
  let run n seed kill samples =
    let r =
      Ftr_p2p.Recovery.run ~line_size:n ~kill_fraction:kill ~samples ~seed ()
    in
    Printf.printf "killed %d of %d nodes at t=0\n" r.Ftr_p2p.Recovery.killed
      r.Ftr_p2p.Recovery.initial_nodes;
    Printf.printf "%8s %10s %18s %10s %10s\n" "time" "success" "probes/lookup" "hops" "repairs";
    List.iter
      (fun sm ->
        Printf.printf "%8.0f %10.3f %18.2f %10.2f %10d\n" sm.Ftr_p2p.Recovery.time
          sm.Ftr_p2p.Recovery.success_rate sm.Ftr_p2p.Recovery.probes_per_lookup
          sm.Ftr_p2p.Recovery.mean_hops sm.Ftr_p2p.Recovery.repairs_so_far)
      r.Ftr_p2p.Recovery.samples
  in
  let kill_t =
    Arg.(value & opt float 0.3 & info [ "kill" ] ~docv:"P" ~doc:"Fraction crashed at t=0.")
  in
  let samples_t =
    Arg.(value & opt int 10 & info [ "samples" ] ~docv:"K" ~doc:"Recovery curve samples.")
  in
  Cmd.v
    (Cmd.info "recovery" ~doc:"Self-healing curve after a mass crash")
    Term.(const run $ n_t 4096 $ seed_t $ kill_t $ samples_t)

(* anatomy *)

let anatomy_cmd =
  let run n links seed =
    let links = resolve_links n links in
    let rng = Rng.of_int seed in
    Printf.printf "%26s %8s %8s %10s %9s %8s %8s %10s\n" "network" "out" "in(max)" "hotspot"
      "med.len" "p90" "p99" "boundary";
    List.iter
      (fun (name, net) ->
        let a = Ftr_core.Network_stats.anatomy net in
        Printf.printf "%26s %8.1f %8d %9.1fx %9.0f %8.0f %8.0f %9.2fx\n" name
          a.Ftr_core.Network_stats.mean_out_degree a.Ftr_core.Network_stats.max_in_degree
          a.Ftr_core.Network_stats.in_degree_hotspot a.Ftr_core.Network_stats.median_length
          a.Ftr_core.Network_stats.p90_length a.Ftr_core.Network_stats.p99_length
          a.Ftr_core.Network_stats.boundary_distortion)
      [
        ("ideal 1/d line", Network.build_ideal ~n ~links (Rng.split rng));
        ("ideal 1/d circle", Network.build_ring ~n ~links (Rng.split rng));
        ("heuristic construction", Ftr_core.Heuristic.build ~n ~links (Rng.split rng));
        ("geometric base-2", Network.build_geometric ~n ~base:2);
        ("chord-like", Network.build_chordlike ~n ());
      ]
  in
  Cmd.v
    (Cmd.info "anatomy" ~doc:"Structural statistics of every network builder")
    Term.(const run $ n_t 4096 $ links_t $ seed_t)

(* dht *)

let dht_cmd =
  let run n links seed replicas fraction requests =
    let links = resolve_links n links in
    let rng = Rng.of_int seed in
    let net = Network.build_ideal ~n ~links rng in
    let store = Ftr_dht.Store.create ~replicas net in
    let w = Ftr_dht.Workload.create ~universe:(max 10 (n / 8)) () in
    Array.iter (fun k -> Ftr_dht.Store.put store ~key:k ~value:"v") (Ftr_dht.Workload.keys w);
    let failures =
      if fraction > 0.0 then
        Ftr_core.Failure.of_node_mask (Ftr_core.Failure.random_node_fraction rng ~n ~fraction)
      else Ftr_core.Failure.none
    in
    let report =
      Ftr_dht.Workload.measure_load ~failures
        ~strategy:(Route.Backtrack { history = 5 })
        ~store ~requests w rng
    in
    Printf.printf "universe %d keys, %d replicas, %d Zipf-popular requests, %.0f%% nodes dead\n"
      (Ftr_dht.Workload.universe w) replicas requests (100.0 *. fraction);
    Printf.printf "hit rate          %8.4f\n" report.Ftr_dht.Workload.hit_rate;
    Printf.printf "mean hops         %8.2f\n" report.Ftr_dht.Workload.mean_hops;
    Printf.printf "serving hotspot   %8.1fx the mean serving load\n"
      report.Ftr_dht.Workload.serve_max_over_mean;
    Printf.printf "forwarding hotspot%8.1fx the mean forwarding load\n"
      report.Ftr_dht.Workload.forward_max_over_mean
  in
  let replicas_t =
    Arg.(value & opt int 3 & info [ "replicas" ] ~docv:"R" ~doc:"Salted replica count.")
  in
  let fraction_t =
    Arg.(value & opt float 0.0 & info [ "fail" ] ~docv:"P" ~doc:"Fraction of nodes to fail.")
  in
  let requests_t =
    Arg.(value & opt int 1000 & info [ "requests" ] ~docv:"Q" ~doc:"Zipf-popular requests.")
  in
  Cmd.v
    (Cmd.info "dht" ~doc:"Resource layer under a Zipf workload, with failures")
    Term.(const run $ n_t 4096 $ links_t $ seed_t $ replicas_t $ fraction_t $ requests_t)

(* churn *)

let churn_cmd =
  let run line_size links seed duration initial =
    let links = resolve_links line_size (Some links) in
    let report =
      Ftr_p2p.Churn.run
        ~config:
          {
            Ftr_p2p.Churn.duration;
            join_rate = 0.05;
            crash_rate = 0.03;
            leave_rate = 0.02;
            lookup_rate = 2.0;
            min_nodes = 8;
          }
        ~seed ~line_size ~initial_nodes:initial ~links ()
    in
    let r = report in
    Printf.printf "final live nodes     %8d\n" r.Ftr_p2p.Churn.final_nodes;
    Printf.printf "joins/crashes/leaves %8d / %d / %d\n" r.Ftr_p2p.Churn.joins
      r.Ftr_p2p.Churn.crashes r.Ftr_p2p.Churn.leaves;
    Printf.printf "lookups (user)       %8d, success %.4f, mean hops %.2f\n"
      r.Ftr_p2p.Churn.lookups_issued r.Ftr_p2p.Churn.success_rate r.Ftr_p2p.Churn.mean_hops;
    Printf.printf "messages/probes/repairs %5d / %d / %d\n" r.Ftr_p2p.Churn.messages
      r.Ftr_p2p.Churn.probes r.Ftr_p2p.Churn.repairs
  in
  let duration_t =
    Arg.(value & opt float 1000.0 & info [ "duration" ] ~docv:"T" ~doc:"Virtual-time horizon.")
  in
  let links_t = Arg.(value & opt int 8 & info [ "links" ] ~docv:"L" ~doc:"Long links per node.") in
  let initial_t =
    Arg.(value & opt int 128 & info [ "initial" ] ~docv:"I" ~doc:"Initial population.")
  in
  Cmd.v
    (Cmd.info "churn" ~doc:"Run the dynamic protocol under churn and report")
    Term.(const run $ n_t 1024 $ links_t $ seed_t $ duration_t $ initial_t)

(* report *)

let report_cmd =
  let run n links seed json prometheus events_path traces selfcheck =
    (* The telemetry layer is the point of this subcommand: force it on
       regardless of FTR_OBS and start from clean registries so the
       snapshot reflects exactly the workload below. *)
    Ftr_obs.Flag.set_mode true;
    Ftr_obs.Metrics.reset Ftr_obs.Metrics.default;
    Ftr_obs.Span.reset ();
    Ftr_obs.Events.reset ();
    Ftr_obs.Tracing.reset ();
    Ftr_obs.Tracing.set_seed seed;
    let links = resolve_links n links in
    let (), jsonl =
      Ftr_obs.Events.with_buffer @@ fun () ->
      let rng = Rng.of_int seed in
      (* A representative slice of the simulator: an ideal network routed
         under 20% node failures with backtracking (route + network
         metrics), a short churn run (engine, overlay and heap metrics),
         a replicated store workload (hit/miss counters) and a small
         heuristic construction (basin/redirect counters). *)
      let net = Network.build_ideal ~n ~links rng in
      let mask = Ftr_core.Failure.random_node_fraction rng ~n ~fraction:0.2 in
      let failures = Ftr_core.Failure.of_node_mask mask in
      let alive v = Ftr_graph.Bitset.get mask v in
      let routed = ref 0 in
      while !routed < 200 do
        let src = Rng.int rng n and dst = Rng.int rng n in
        if src <> dst && alive src && alive dst then begin
          incr routed;
          ignore
            (Route.route ~failures ~strategy:(Route.Backtrack { history = 5 }) ~rng net ~src
               ~dst)
        end
      done;
      ignore
        (Ftr_p2p.Churn.run
           ~config:
             {
               Ftr_p2p.Churn.duration = 200.0;
               join_rate = 0.05;
               crash_rate = 0.03;
               leave_rate = 0.02;
               lookup_rate = 1.0;
               min_nodes = 8;
             }
           ~seed ~line_size:(max 256 (n / 4)) ~initial_nodes:64 ~links:(max 1 (min links 4)) ());
      let store = Ftr_dht.Store.create ~replicas:2 net in
      for i = 1 to 64 do
        Ftr_dht.Store.put store ~key:(Printf.sprintf "key-%d" i) ~value:(string_of_int i)
      done;
      (* A third of the gets miss, so both result labels show up. *)
      for i = 1 to 96 do
        ignore (Ftr_dht.Store.get store ~key:(Printf.sprintf "key-%d" i))
      done;
      ignore (Ftr_core.Heuristic.build ~n:(min n 512) ~links:(max 1 (min links 4)) rng)
    in
    (match events_path with
    | Some path ->
        let oc = open_out path in
        output_string oc jsonl;
        close_out oc
    | None -> ());
    if selfcheck then begin
      let problems = ref [] in
      let fail fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
      let lines =
        List.filter (fun l -> not (String.equal l "")) (String.split_on_char '\n' jsonl)
      in
      if lines = [] then fail "no events were emitted";
      List.iter
        (fun line ->
          match Ftr_obs.Json.parse_opt line with
          | Some (Ftr_obs.Json.Obj _) -> ()
          | Some _ -> fail "event line is not a JSON object: %s" line
          | None -> fail "malformed JSONL line: %s" line)
        lines;
      if Ftr_obs.Metrics.size () = 0 then fail "metrics registry is empty";
      let hops_count =
        List.fold_left
          (fun acc it ->
            match it.Ftr_obs.Metrics.item_view with
            | Ftr_obs.Metrics.Histogram_view hv
              when String.equal it.Ftr_obs.Metrics.item_name "route_hops" ->
                acc + hv.Ftr_obs.Metrics.h_count
            | _ -> acc)
          0
          (Ftr_obs.Metrics.snapshot ())
      in
      if hops_count = 0 then fail "route_hops histogram recorded no observations";
      (match Ftr_obs.Span.find "engine.run" with
      | Some s when s.Ftr_obs.Span.count > 0 -> ()
      | Some _ | None -> fail "no engine.run span was timed");
      (* Flight recorder: traces were recorded, memory stayed bounded
         (ring, pins and per-trace step caps), and the Chrome export
         parses as a JSON object. *)
      let ring_cap = !Ftr_obs.Tracing.ring_capacity
      and pin_cap = !Ftr_obs.Tracing.pin_capacity
      and step_cap = !Ftr_obs.Tracing.max_steps in
      if Ftr_obs.Tracing.completed () = 0 then fail "flight recorder completed no traces";
      if Ftr_obs.Tracing.retained_count () > ring_cap then
        fail "flight recorder ring holds %d traces, past its capacity %d"
          (Ftr_obs.Tracing.retained_count ()) ring_cap;
      if Ftr_obs.Tracing.pinned_count () > pin_cap then
        fail "flight recorder pinned %d traces, past its capacity %d"
          (Ftr_obs.Tracing.pinned_count ()) pin_cap;
      if Ftr_obs.Tracing.completed () > ring_cap && Ftr_obs.Tracing.evicted () = 0 then
        fail "ring overflow recorded no evictions";
      List.iter
        (fun tr ->
          if Ftr_obs.Tracing.step_count tr > step_cap then
            fail "trace %s holds %d steps, past the cap %d" (Ftr_obs.Tracing.id_hex tr)
              (Ftr_obs.Tracing.step_count tr) step_cap)
        (Ftr_obs.Tracing.retained_traces () @ Ftr_obs.Tracing.pinned_traces ());
      (match Ftr_obs.Json.parse_opt (Ftr_obs.Tracing.chrome_trace_string ()) with
      | Some (Ftr_obs.Json.Obj fields) ->
          if not (List.mem_assoc "traceEvents" fields) then
            fail "chrome trace export lacks a traceEvents field"
      | Some _ | None -> fail "chrome trace export did not parse as a JSON object");
      (* Zero overhead when off: with FTR_OBS disabled, a long scratch
         route must stay allocation-free — the same minor-words budget
         the CSR tests enforce. *)
      Ftr_obs.Flag.set_mode false;
      let line = Network.build_ideal ~n:4096 ~links:0 (Rng.of_int seed) in
      let scratch = Route.scratch line in
      ignore (Route.route ~scratch line ~src:0 ~dst:1);
      let before = Gc.minor_words () in
      ignore (Route.route ~scratch line ~src:0 ~dst:4095);
      let delta = Gc.minor_words () -. before in
      Ftr_obs.Flag.set_mode true;
      if delta > 512.0 then
        fail "a 4095-hop route with telemetry off allocated %.0f minor words" delta;
      match !problems with
      | [] -> print_endline "report selfcheck passed"
      | ps ->
          List.iter (Printf.eprintf "report selfcheck: %s\n") (List.rev ps);
          exit 1
    end
    else if json && traces then
      (* Flight-recorder focus: the retained ring and the pinned failures
         as structured traces, ready for jq or the Chrome converter. *)
      print_endline
        (Ftr_obs.Json.to_string
           (Ftr_obs.Json.Obj
              [
                ( "traces",
                  Ftr_obs.Json.List
                    (List.map Ftr_obs.Tracing.to_json (Ftr_obs.Tracing.retained_traces ())) );
                ( "pinned",
                  Ftr_obs.Json.List
                    (List.map Ftr_obs.Tracing.to_json (Ftr_obs.Tracing.pinned_traces ())) );
              ]))
    else if json then print_endline (Ftr_obs.Json.to_string (Ftr_obs.Export.json_snapshot ()))
    else if prometheus then print_string (Ftr_obs.Export.prometheus ())
    else begin
      print_string (Ftr_obs.Export.text_report ());
      if traces then begin
        Printf.printf
          "\nflight recorder: %d routes traced, %d retained, %d pinned failures, %d evicted\n"
          (Ftr_obs.Tracing.completed ())
          (Ftr_obs.Tracing.retained_count ())
          (Ftr_obs.Tracing.pinned_count ())
          (Ftr_obs.Tracing.evicted ());
        List.iter
          (fun tr ->
            print_newline ();
            print_string (Ftr_obs.Tracing.render tr))
          (Ftr_obs.Tracing.pinned_traces ())
      end;
      Printf.printf "\nevents: %d emitted, %d suppressed%s\n" (Ftr_obs.Events.emitted ())
        (Ftr_obs.Events.suppressed ())
        (match events_path with Some p -> Printf.sprintf " (written to %s)" p | None -> "")
    end
  in
  let prometheus_t =
    Arg.(
      value & flag
      & info [ "prometheus" ] ~doc:"Emit the snapshot in the Prometheus text exposition format.")
  in
  let events_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"PATH" ~doc:"Write the structured JSONL event stream to PATH.")
  in
  let traces_t =
    Arg.(
      value & flag
      & info [ "traces" ]
          ~doc:
            "Also print the flight recorder: retained/pinned counts and the full hop tree of \
             every pinned (failed) route. With $(b,--json), emit the traces as structured \
             JSON instead of the metrics snapshot.")
  in
  let selfcheck_t =
    Arg.(
      value & flag
      & info [ "selfcheck" ]
          ~doc:
            "Validate the snapshot instead of printing it: every event line parses as a JSON \
             object, the registry is non-empty, route_hops has observations, an engine.run \
             span was timed, the flight recorder stayed within its ring/pin/step bounds, the \
             Chrome export parses, and a telemetry-off route allocates nothing. Exit 1 on any \
             violation.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run a representative workload with telemetry forced on and print the snapshot")
    Term.(
      const run $ n_t 1024 $ links_t $ seed_t $ json_t $ prometheus_t $ events_t $ traces_t
      $ selfcheck_t)

(* check *)

let check_cmd =
  let run n links seed verbose =
    (* The battery exercises every builder; the smallest ones (ring,
       deterministic) need a handful of nodes, so demand a sane floor
       instead of surfacing a raw Invalid_argument. *)
    if n < 16 then begin
      Printf.eprintf "p2psim check: --nodes must be at least 16 (got %d)\n" n;
      exit 2
    end;
    let links = resolve_links n links in
    (match links with
    | l when l < 0 ->
        Printf.eprintf "p2psim check: --links must be non-negative (got %d)\n" l;
        exit 2
    | _ -> ());
    let rng = Rng.of_int seed in
    let module Check = Ftr_check.Check in
    let total = ref 0 and sections = ref 0 in
    let report label vs =
      incr sections;
      total := !total + List.length vs;
      if vs <> [] || verbose then Format.printf "%a" (Check.pp_report ~label) vs
    in
    (* Static builders: structure, then goodness of fit to the 1/d law. *)
    let ideal = Network.build_ideal ~n ~links rng in
    report "ideal: structure" (Check.network ~expected_links:links ideal);
    report "ideal: csr frame" (Check.csr ideal);
    if links > 0 then report "ideal: 1/d law" (Check.network_gof ideal);
    let ring = Network.build_ring ~n ~links rng in
    report "ring: structure" (Check.network ring);
    report "ring: csr frame" (Check.csr ring);
    if links > 0 then report "ring: 1/d law" (Check.network_gof ring);
    let binom = Network.build_binomial ~n ~links ~present_p:0.7 rng in
    report "binomial: structure" (Check.network binom);
    report "binomial: csr frame" (Check.csr binom);
    let det = Network.build_deterministic ~n ~base:2 in
    report "deterministic: structure" (Check.network ~multi_edges:`Forbidden det);
    report "deterministic: csr frame" (Check.csr det);
    let geo = Network.build_geometric ~n ~base:2 in
    report "geometric: structure" (Check.network ~multi_edges:`Forbidden geo);
    report "geometric: csr frame" (Check.csr geo);
    let chord = Network.build_chordlike ~n () in
    report "chordlike: structure"
      (Check.network ~multi_edges:`Forbidden ~ring:Check.Successor_only chord);
    report "chordlike: csr frame" (Check.csr chord);
    (* The arrival heuristic needs at least one long link per node. *)
    if links > 0 then begin
      let heur = Ftr_core.Heuristic.build ~n ~links rng in
      report "heuristic: structure" (Check.network heur);
      report "heuristic: csr frame" (Check.csr heur);
      (* The arrival process only approximates the law (Figure 5 shows the
         residual bias), so the heuristic gets looser thresholds. *)
      report "heuristic: 1/d law"
        (Check.network_gof ~ks_threshold:0.1 ~chi2_per_dof:25.0 heur)
    end;
    (* Route traces over every strategy, healthy and under failures. *)
    let trace_battery label ?failures ~side ~strategy net =
      let vs = ref [] in
      let alive v =
        match failures with None -> true | Some f -> Ftr_core.Failure.node_alive f v
      in
      let size = Network.size net in
      let tried = ref 0 in
      while !tried < 40 do
        let src = Rng.int rng size and dst = Rng.int rng size in
        if src <> dst && alive src && alive dst then begin
          incr tried;
          let _, v = Check.route_and_check ?failures ~side ~strategy ~rng net ~src ~dst in
          vs := !vs @ v
        end
      done;
      report label !vs
    in
    trace_battery "trace: two-sided greedy" ~side:Route.Two_sided ~strategy:Route.Terminate
      ideal;
    trace_battery "trace: one-sided greedy" ~side:Route.One_sided ~strategy:Route.Terminate
      ideal;
    trace_battery "trace: one-sided on the circle" ~side:Route.One_sided
      ~strategy:Route.Terminate ring;
    let mask = Ftr_core.Failure.random_node_fraction rng ~n ~fraction:0.2 in
    let failures = Ftr_core.Failure.of_node_mask mask in
    trace_battery "trace: reroute under failures" ~failures ~side:Route.Two_sided
      ~strategy:(Route.Random_reroute { attempts = 3 })
      ideal;
    trace_battery "trace: backtrack under failures" ~failures ~side:Route.Two_sided
      ~strategy:(Route.Backtrack { history = 5 })
      ideal;
    (* Heap on its own, then the engine mid-run and the overlay at
       quiescence (populate + joins + lookups, run to empty). *)
    let h = Ftr_sim.Heap.create ~compare:Int.compare in
    for _ = 1 to 512 do
      Ftr_sim.Heap.push h (Rng.int rng 10_000)
    done;
    for _ = 1 to 256 do
      ignore (Ftr_sim.Heap.pop h)
    done;
    report "heap: push/pop order" (Check.heap h);
    let engine = Ftr_sim.Engine.create () in
    (* The dynamic protocol keeps at least one long link per node. *)
    let ov = Ftr_p2p.Overlay.create ~line_size:n ~links:(max 1 links) ~rng engine in
    let m = min 256 (n / 2) in
    let stride = n / m in
    Ftr_p2p.Overlay.populate ov ~positions:(List.init m (fun i -> i * stride));
    for i = 0 to (m / 4) - 1 do
      let pos = (i * stride) + (stride / 2) + 1 in
      if pos < n && not (Ftr_p2p.Overlay.is_alive ov pos) then
        Ftr_p2p.Overlay.join ov ~pos ~via:(Rng.int rng m * stride)
    done;
    for _ = 1 to 64 do
      Ftr_p2p.Overlay.lookup ov ~from:(Rng.int rng m * stride) ~target:(Rng.int rng n) ()
    done;
    Ftr_sim.Engine.run ~max_events:200 engine;
    report "engine: mid-run queue" (Check.engine engine);
    Ftr_sim.Engine.run engine;
    report "overlay: quiescent ring" (Check.overlay ~strict_ring:true ov);
    (* DHT store over the ideal network, fully replicated. *)
    let st = Ftr_dht.Store.create ~replicas:3 ideal in
    for i = 1 to 256 do
      Ftr_dht.Store.put st ~key:(Printf.sprintf "key-%d" i) ~value:(string_of_int i)
    done;
    report "store: key placement" (Check.store ~complete:true st);
    (* Exec subsystem: merged sweep results must not depend on the worker
       count, and per-job streams must be distinct and root-free. *)
    report "exec: deterministic merge" (Check.exec ~seed ());
    (* Snapshot subsystem: save/load round-trip fidelity in both mmap and
       copy modes, plus rejection of every corrupted-file variant. *)
    report "snapshot: round-trip" (Check.snapshot ~seed ());
    (* Service subsystem: a churny serve run must leave conservation,
       ring sanity and every mailbox invariant intact. *)
    let svc_cfg =
      {
        Ftr_svc.Driver.default_config with
        Ftr_svc.Driver.line_size = max 256 (min n 1024);
        initial = 32;
        links = max 1 (min links 4);
        seed;
        ticks = 16;
        rate = 4;
        join_rate = 0.5;
        crash_rate = 0.5;
        leave_rate = 0.25;
        stabilize = 1;
      }
    in
    let svc_res = Ftr_svc.Driver.run svc_cfg in
    report "service: post-churn invariants"
      (Check.service svc_res.Ftr_svc.Driver.res_service);
    let mb = Ftr_svc.Mailbox.create ~capacity:4 ~owner:0 () in
    List.iter
      (fun (time, src, seq) -> ignore (Ftr_svc.Mailbox.post mb ~time ~src ~seq ()))
      [ (3, 1, 0); (1, 2, 0); (1, 1, 1); (2, 0, 0); (9, 9, 9) ];
    report "service: mailbox discipline" (Check.mailbox mb);
    if !total = 0 then
      Printf.printf "all %d check sections passed (0 violations)\n" !sections
    else begin
      Printf.printf "%d violation(s) across %d sections\n" !total !sections;
      exit 1
    end
  in
  let verbose_t =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every section, not just failures.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run the invariant sanitizer battery over builders, routes, simulator and DHT"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs every runtime invariant check (docs/CHECKING.md) against freshly built \
              networks, routes, the simulator and the DHT store. Exits 1 on any violation.";
           `P
             "Static properties are covered separately by the three-stage $(b,ftr_lint) \
              analyzer (docs/LINTING.md): $(b,dune build @lint) runs this battery, then \
              lints lib/, bin/ and bench/ syntactically for nondeterminism sources, \
              polymorphic comparison, hash-order output, ungated telemetry and hot-path \
              allocation (R1-R5), runs the typed interprocedural stage \
              ($(b,@lint-typed), rules T1-T4) over the compiled .cmt files — a \
              call-graph analysis catching cross-function domain races reachable from \
              Ftr_exec.Pool worker jobs, transitive nondeterminism taint and typed \
              comparison hazards — and finally the flow-sensitive stage \
              ($(b,@lint-flow), rules D1-D4): per-function control-flow graphs and \
              typestate dataflow proving telemetry writes gated on every path, \
              resources released or validated on every path, message dispatches \
              exhaustive, and hot loops free of invariant flag reloads, with \
              incremental caching and deterministic parallel analysis. \
              $(b,@lint-tests) lints test/ under a relaxed profile.";
         ])
    Term.(const run $ n_t 1024 $ links_t $ seed_t $ verbose_t)

(* sweep *)

module Sweep = Ftr_exec.Sweep
module Json = Ftr_obs.Json
module Summary = Ftr_stats.Summary

(* The checkpoint codec renders floats by their IEEE-754 bit pattern so a
   resumed sweep decodes *exactly* what the interrupted run computed —
   Json.Float's %.12g rendering is lossy, and the resume acceptance test
   compares output byte for byte. NaN (mean hops when nothing was
   delivered) round-trips too. *)
let bits f = Json.String (Printf.sprintf "%Lx" (Int64.bits_of_float f))

let of_bits = function
  | Some (Json.String s) -> (
      match Int64.of_string_opt ("0x" ^ s) with
      | Some b -> Some (Int64.float_of_bits b)
      | None -> None)
  | Some _ | None -> None

let encode_measurement (m : E.measurement) =
  Json.Obj
    [
      ("failed", bits m.E.failed_fraction);
      ("hops", bits m.E.mean_hops);
      ("ci95", bits m.E.hops_ci95);
      ("path", bits m.E.mean_path_hops);
      ("messages", Json.Int m.E.messages);
    ]

let decode_measurement j =
  match
    ( of_bits (Json.member "failed" j),
      of_bits (Json.member "hops" j),
      of_bits (Json.member "ci95" j),
      of_bits (Json.member "path" j),
      Json.member "messages" j )
  with
  | Some failed_fraction, Some mean_hops, Some hops_ci95, Some mean_path_hops, Some (Json.Int messages)
    ->
      Some { E.failed_fraction; mean_hops; hops_ci95; mean_path_hops; messages }
  | _ -> None

let sweep_cmd =
  let run ns links_list fails networks messages strategy seed jobs checkpoint resume csv_path
      json selfcheck =
    if resume && checkpoint = None then begin
      Printf.eprintf "p2psim sweep: --resume needs --checkpoint FILE\n";
      exit 2
    end;
    let strategy = strategy_of_string strategy in
    let resolve n l = if l = 0 then int_of_float (Theory.lg n) else l in
    (* The grid is the job decomposition: (n, links, fail) points with the
       [networks] replicates as the innermost axis, so a point's replicates
       occupy consecutive job indices whatever the worker count. *)
    let points = Sweep.grid3 ns links_list fails in
    let sweep =
      Sweep.create
        ~run:(fun ~index:_ ~rng (n, links, fraction, _rep) ->
          let links = resolve n links in
          let net = Network.build_ideal ~n ~links rng in
          let failures =
            if fraction > 0.0 then
              Ftr_core.Failure.of_node_mask
                (Ftr_core.Failure.random_node_fraction rng ~n ~fraction)
            else Ftr_core.Failure.none
          in
          let pairs = E.random_live_pairs rng failures ~n ~messages in
          E.measure ~failures ~strategy ~pairs ~messages ~rng net)
        (Sweep.grid4 ns links_list fails (List.init networks Fun.id))
    in
    let run_plain ?jobs () = Sweep.run ?jobs ~seed sweep in
    let serialize rs =
      String.concat "\n" (Array.to_list (Array.map (fun m -> Json.to_string (encode_measurement m)) rs))
    in
    if selfcheck then begin
      (* The acceptance gate for the exec subsystem: the merged output must
         be byte-identical across worker counts and the sequential
         fallback, and resuming a truncated checkpoint must reproduce the
         uninterrupted run. Exit 1 on any divergence. *)
      let problems = ref [] in
      let fail fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
      let reference = serialize (run_plain ~jobs:1 ()) in
      List.iter
        (fun jobs ->
          if serialize (run_plain ~jobs ()) <> reference then
            fail "jobs=%d output differs from the jobs=1 reference" jobs)
        [ 2; 4 ];
      Unix.putenv "FTR_EXEC_SEQ" "1";
      if serialize (run_plain ()) <> reference then
        fail "FTR_EXEC_SEQ=1 output differs from the jobs=1 reference";
      Unix.putenv "FTR_EXEC_SEQ" "0";
      let path = Filename.temp_file "ftr_sweep_selfcheck" ".jsonl" in
      let run_ck ~fresh =
        Sweep.run_checkpointed ~wave:2 ~fresh ~path ~seed ~encode:encode_measurement
          ~decode:decode_measurement sweep
      in
      if serialize (run_ck ~fresh:true) <> reference then
        fail "checkpointed output differs from the plain run";
      (* Simulate a kill mid-sweep: drop the journal's last two records,
         then resume. *)
      let lines = In_channel.with_open_text path In_channel.input_lines in
      let keep = max 1 (List.length lines - 2) in
      Out_channel.with_open_text path (fun oc ->
          List.iteri
            (fun i l ->
              if i < keep then begin
                output_string oc l;
                output_char oc '\n'
              end)
            lines);
      let resumed = serialize (run_ck ~fresh:false) in
      Sys.remove path;
      if resumed <> reference then fail "resume from a truncated checkpoint diverged";
      match !problems with
      | [] ->
          print_endline
            "sweep selfcheck passed (jobs=1/2/4, FTR_EXEC_SEQ=1 and checkpoint resume all \
             byte-identical)"
      | ps ->
          List.iter (Printf.eprintf "sweep selfcheck: %s\n") (List.rev ps);
          exit 1
    end
    else begin
      let results =
        match checkpoint with
        | Some path ->
            Sweep.run_checkpointed ?jobs ~fresh:(not resume) ~path ~seed
              ~encode:encode_measurement ~decode:decode_measurement sweep
        | None -> run_plain ?jobs ()
      in
      (* Replicates are consecutive (innermost axis), so folding slice
         [pi * networks, (pi+1) * networks) aggregates point [pi]. *)
      let rows =
        List.mapi
          (fun pi (n, links0, fraction) ->
            let failed = Summary.create () in
            let hops = Summary.create () in
            let path_s = Summary.create () in
            for k = 0 to networks - 1 do
              let m = results.((pi * networks) + k) in
              Summary.add failed m.E.failed_fraction;
              if not (Float.is_nan m.E.mean_hops) then begin
                Summary.add hops m.E.mean_hops;
                Summary.add path_s m.E.mean_path_hops
              end
            done;
            ( n,
              resolve n links0,
              fraction,
              Summary.mean failed,
              Summary.mean hops,
              Summary.mean path_s ))
          points
      in
      (match csv_path with
      | Some path ->
          let dir = Filename.dirname path in
          if not (String.equal dir "" || String.equal dir ".") then Ftr_stats.Csv.mkdir_p dir;
          Ftr_stats.Csv.write_file ~path
            ~header:[ "nodes"; "links"; "fail"; "failed"; "hops"; "path_hops" ]
            ~rows:
              (List.map
                 (fun (n, links, fraction, failed, hops, path) ->
                   Ftr_stats.Csv.
                     [
                       int_field n; int_field links; float_field fraction; float_field failed;
                       float_field hops; float_field path;
                     ])
                 rows);
          Printf.printf "wrote %s (%d rows, %d jobs)\n" path (List.length rows) (Sweep.size sweep)
      | None -> ());
      if json then begin
        let jf x = if Float.is_nan x then Json.String "nan" else Json.Float x in
        print_endline
          (Json.to_string
             (Json.List
                (List.map
                   (fun (n, links, fraction, failed, hops, path) ->
                     Json.Obj
                       [
                         ("nodes", Json.Int n);
                         ("links", Json.Int links);
                         ("fail", jf fraction);
                         ("failed", jf failed);
                         ("hops", jf hops);
                         ("path_hops", jf path);
                       ])
                   rows)))
      end
      else if csv_path = None then begin
        Printf.printf "%8s %6s %6s | %10s %10s %10s   (%d networks x %d messages per point)\n"
          "nodes" "links" "fail" "failed" "hops" "path" networks messages;
        List.iter
          (fun (n, links, fraction, failed, hops, path) ->
            Printf.printf "%8d %6d %6.2f | %10.4f %10.2f %10.2f\n" n links fraction failed hops
              path)
          rows
      end
    end
  in
  let ns_t =
    Arg.(
      value
      & opt (list int) [ 1024 ]
      & info [ "nodes"; "n" ] ~docv:"N,..." ~doc:"Grid axis: node counts.")
  in
  let links_t =
    Arg.(
      value
      & opt (list int) [ 0 ]
      & info [ "links" ] ~docv:"L,..." ~doc:"Grid axis: long links per node (0 means lg N).")
  in
  let fails_t =
    Arg.(
      value
      & opt (list float) [ 0.0 ]
      & info [ "fail" ] ~docv:"P,..." ~doc:"Grid axis: node-failure fractions.")
  in
  let strategy_t =
    Arg.(
      value & opt string "backtrack"
      & info [ "strategy" ] ~docv:"S" ~doc:"terminate | reroute | backtrack.")
  in
  let jobs_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"J"
          ~doc:
            "Worker domains (default: the recommended domain count; never changes the output, \
             only the wall clock).")
  in
  let checkpoint_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:"Journal completed jobs to FILE (JSONL) so the sweep survives a kill.")
  in
  let resume_t =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the --checkpoint journal: jobs already recorded are decoded, not \
             re-run. Without this flag an existing journal is overwritten.")
  in
  let csv_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the aggregated rows to FILE as CSV.")
  in
  let selfcheck_t =
    Arg.(
      value & flag
      & info [ "selfcheck" ]
          ~doc:
            "Run the grid under jobs=1/2/4 and FTR_EXEC_SEQ=1, plus a truncated checkpoint \
             resume, and demand byte-identical output everywhere. Exit 1 on any divergence.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a (nodes x links x fail) measurement grid on the multicore executor, \
          deterministically")
    Term.(
      const run $ ns_t $ links_t $ fails_t $ networks_t 3 $ messages_t 100 $ strategy_t $ seed_t
      $ jobs_t $ checkpoint_t $ resume_t $ csv_t $ json_t $ selfcheck_t)

(* serve — the message-passing overlay service *)

let serve_cmd =
  let module D = Ftr_svc.Driver in
  let run nodes initial links seed ticks rate join_rate crash_rate leave_rate stabilize ttl jobs
      shards json transcript explain no_wall selfcheck =
    let links = resolve_links nodes links in
    if initial < 2 || initial > nodes then begin
      Printf.eprintf "p2psim serve: --initial must be in [2, nodes]\n";
      exit 2
    end;
    let cfg =
      {
        D.default_config with
        D.line_size = nodes;
        initial;
        links;
        seed;
        ticks;
        rate;
        join_rate;
        crash_rate;
        leave_rate;
        stabilize;
        ttl;
        jobs;
        shards;
        explain;
        record = transcript || selfcheck;
      }
    in
    if selfcheck then begin
      (* The acceptance gate for the service subsystem: the merged
         transcript and the deterministic report must be byte-identical
         across worker counts and the sequential fallback — including any
         mid-run churn the flags inject — and the structural invariants
         (request conservation, no mailbox overflow, clean drain) must
         hold. Exit 1 on any divergence. *)
      let cfg = { cfg with D.record = true; explain = None } in
      let serialize (res : D.result) =
        res.D.res_transcript
        ^ String.concat "\n" (D.report_lines ~wall:false res.D.res_report)
        ^ "\n"
      in
      let problems = ref [] in
      let fail fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
      let ref_res = D.run { cfg with D.jobs = Some 1 } in
      let reference = serialize ref_res in
      List.iter
        (fun j ->
          if serialize (D.run { cfg with D.jobs = Some j }) <> reference then
            fail "jobs=%d transcript differs from the jobs=1 reference" j)
        [ 2; 4 ];
      Unix.putenv "FTR_EXEC_SEQ" "1";
      if serialize (D.run { cfg with D.jobs = None }) <> reference then
        fail "FTR_EXEC_SEQ=1 transcript differs from the jobs=1 reference";
      Unix.putenv "FTR_EXEC_SEQ" "0";
      List.iter (fun p -> fail "%s" p) (D.invariant_problems ref_res);
      match !problems with
      | [] ->
          print_endline
            "serve selfcheck passed (jobs=1/2/4 and FTR_EXEC_SEQ=1 transcripts byte-identical; \
             invariants hold)"
      | ps ->
          List.iter (Printf.eprintf "serve selfcheck: %s\n") (List.rev ps);
          exit 1
    end
    else begin
      (match explain with
      | Some _ ->
          (* Same clean-slate forcing as [explain]: trace identity derives
             from (seed, request id), so the rendered trace is
             byte-identical across --jobs counts. *)
          Ftr_obs.Flag.set_mode true;
          Ftr_obs.Metrics.reset Ftr_obs.Metrics.default;
          Ftr_obs.Span.reset ();
          Ftr_obs.Events.reset ();
          Ftr_obs.Tracing.reset ();
          Ftr_obs.Tracing.set_seed seed;
          Ftr_obs.Tracing.force_full true
      | None -> ());
      let res = D.run cfg in
      if transcript then print_string res.D.res_transcript;
      (match explain with
      | Some k -> (
          match Ftr_obs.Tracing.latest () with
          | Some tr ->
              Printf.printf "request #%d as a multi-hop message exchange\n" k;
              print_string (Ftr_obs.Tracing.render tr)
          | None ->
              Printf.eprintf
                "p2psim serve: request #%d left no trace (is the id within --ticks x --rate?)\n"
                k;
              exit 1)
      | None -> ());
      if json then
        print_endline (Ftr_obs.Json.to_string (D.report_json ~wall:(not no_wall) res.D.res_report))
      else List.iter print_endline (D.report_lines ~wall:(not no_wall) res.D.res_report)
    end
  in
  let initial_t =
    Arg.(
      value & opt int 256
      & info [ "initial" ] ~docv:"K" ~doc:"Nodes populated before the service starts.")
  in
  let ticks_t =
    Arg.(
      value & opt int 64
      & info [ "ticks" ] ~docv:"T" ~doc:"Control horizon in logical ticks; draining adds rounds.")
  in
  let rate_t =
    Arg.(value & opt int 8 & info [ "rate" ] ~docv:"R" ~doc:"User lookups issued per tick.")
  in
  let join_rate_t =
    Arg.(
      value & opt float 0.0
      & info [ "join-rate" ] ~docv:"MEAN" ~doc:"Poisson mean of joins injected per tick.")
  in
  let crash_rate_t =
    Arg.(
      value & opt float 0.0
      & info [ "crash-rate" ] ~docv:"MEAN" ~doc:"Poisson mean of crashes injected per tick.")
  in
  let leave_rate_t =
    Arg.(
      value & opt float 0.0
      & info [ "leave-rate" ] ~docv:"MEAN"
          ~doc:"Poisson mean of graceful leaves injected per tick.")
  in
  let stabilize_t =
    Arg.(
      value & opt int 0
      & info [ "stabilize" ] ~docv:"K" ~doc:"Stabilization pulses issued per tick.")
  in
  let ttl_t =
    Arg.(value & opt int 256 & info [ "ttl" ] ~docv:"H" ~doc:"Lookup hop budget.")
  in
  let jobs_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"J"
          ~doc:
            "Worker domains (default: the recommended domain count; never changes the \
             transcript).")
  in
  let shards_t =
    Arg.(
      value & opt int 8
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Fixed shard count the due actors are cut into each round; part of the \
             deterministic schedule, independent of --jobs.")
  in
  let transcript_t =
    Arg.(
      value & flag
      & info [ "transcript" ] ~doc:"Print the merged per-message service transcript.")
  in
  let explain_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "explain" ] ~docv:"K"
          ~doc:
            "Trace request K through the flight recorder and print its hop-by-hop story as a \
             message exchange.")
  in
  let no_wall_t =
    Arg.(
      value & flag
      & info [ "no-wall" ]
          ~doc:
            "Omit the wall-clock line from the report so the whole output is byte-reproducible \
             (what the @serve golden rule diffs).")
  in
  let selfcheck_t =
    Arg.(
      value & flag
      & info [ "selfcheck" ]
          ~doc:
            "Verify the service transcript is byte-identical across jobs=1/2/4 and \
             FTR_EXEC_SEQ=1, and that the scheduler invariants hold; exit 1 on divergence.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the overlay as a message-passing service: actor nodes, deterministic mailboxes, \
          multi-hop lookups under churn")
    Term.(
      const run $ n_t 4096 $ initial_t $ links_t $ seed_t $ ticks_t $ rate_t $ join_rate_t
      $ crash_rate_t $ leave_rate_t $ stabilize_t $ ttl_t $ jobs_t $ shards_t $ json_t
      $ transcript_t $ explain_t $ no_wall_t $ selfcheck_t)

(* snapshot *)

let snapshot_cmd =
  let module Snapshot = Ftr_core.Snapshot in
  let module Route_batch = Ftr_core.Route_batch in
  (* A bad file must exit 1 with the defect named, never a backtrace. *)
  let or_die f =
    match f () with
    | v -> v
    | exception Snapshot.Corrupt msg ->
        Printf.eprintf "snapshot error: %s\n" msg;
        exit 1
    | exception Unix.Unix_error (e, _, arg) ->
        Printf.eprintf "snapshot error: %s: %s\n" arg (Unix.error_message e);
        exit 1
  in
  let path_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PATH" ~doc:"Snapshot file (conventionally .ftrsnap).")
  in
  let geometry_label = function Network.Line -> "line" | Network.Circle -> "circle" in
  let print_info ~json (i : Snapshot.info) =
    if json then
      let open Ftr_obs.Json in
      print_endline
        (to_string
           (Obj
              [
                ("version", Int i.Snapshot.version);
                ("geometry", String (geometry_label i.Snapshot.geometry));
                ("line_size", Int i.Snapshot.line_size);
                ("nodes", Int i.Snapshot.nodes);
                ("edges", Int i.Snapshot.edges);
                ("links", Int i.Snapshot.links);
                ("file_bytes", Int i.Snapshot.file_bytes);
              ]))
    else
      Printf.printf "snapshot v%d: %d nodes on a %d-point %s, %d edges (l=%d), %d bytes\n"
        i.Snapshot.version i.Snapshot.nodes i.Snapshot.line_size
        (geometry_label i.Snapshot.geometry)
        i.Snapshot.edges i.Snapshot.links i.Snapshot.file_bytes
  in
  let save_cmd =
    let run n links seed ring path =
      let links = resolve_links n links in
      let rng = Rng.of_int seed in
      let net =
        if ring then Network.build_ring ~n ~links rng else Network.build_ideal ~n ~links rng
      in
      or_die (fun () -> Snapshot.save net ~path);
      print_info ~json:false (or_die (fun () -> Snapshot.info ~path))
    in
    let ring_t =
      Arg.(value & flag & info [ "ring" ] ~doc:"Build the circle network instead of the line.")
    in
    Cmd.v
      (Cmd.info "save" ~doc:"Build a network and write it as an mmap-able snapshot")
      Term.(const run $ n_t 65536 $ links_t $ seed_t $ ring_t $ path_t)
  in
  let info_cmd =
    let run json path = print_info ~json (or_die (fun () -> Snapshot.info ~path)) in
    Cmd.v
      (Cmd.info "info" ~doc:"Decode and verify a snapshot header without loading the payload")
      Term.(const run $ json_t $ path_t)
  in
  let load_cmd =
    let run copy no_verify messages jobs seed json path =
      let net =
        or_die (fun () -> Snapshot.load ~mmap:(not copy) ~validate:(not no_verify) ~path ())
      in
      let n = Network.size net in
      if not json then
        Printf.printf "loaded %d nodes, %d edges (%s, %s)\n" n
          (Ftr_graph.Adjacency.Csr.edge_count (Network.csr net))
          (if copy then "copied" else "mmap")
          (if no_verify then "unverified" else "verified");
      if messages > 0 then begin
        (* Smoke routing straight off the mapped file: uniform random
           pairs, batched over the exec pool. *)
        let rng = Rng.of_int seed in
        let pairs =
          Array.init messages (fun _ ->
              let src = Rng.int rng n in
              let rec draw () =
                let d = Rng.int rng n in
                if d = src then draw () else d
              in
              (src, draw ()))
        in
        let outcomes = Route_batch.run ?jobs net ~pairs in
        let delivered = ref 0 and hops = ref 0 in
        Array.iter
          (fun o ->
            if Route.delivered o then incr delivered;
            hops := !hops + Route.hops o)
          outcomes;
        if json then
          let open Ftr_obs.Json in
          print_endline
            (to_string
               (Obj
                  [
                    ("nodes", Int n);
                    ("messages", Int messages);
                    ("delivered", Int !delivered);
                    ("total_hops", Int !hops);
                  ]))
        else
          Printf.printf "routed %d messages: %d delivered, %.2f mean hops\n" messages !delivered
            (float_of_int !hops /. float_of_int messages)
      end
    in
    let copy_t =
      Arg.(
        value & flag
        & info [ "copy" ] ~doc:"Copy the payload into fresh memory instead of mmap views.")
    in
    let no_verify_t =
      Arg.(
        value & flag
        & info [ "no-verify" ]
            ~doc:"Skip the full structural validation (header and frame checks still run).")
    in
    let messages_t =
      Arg.(
        value & opt int 0
        & info [ "messages" ] ~docv:"M" ~doc:"Route M random messages off the loaded network.")
    in
    let jobs_t =
      Arg.(
        value
        & opt (some int) None
        & info [ "jobs" ] ~docv:"J" ~doc:"Worker domains for batch routing.")
    in
    Cmd.v
      (Cmd.info "load" ~doc:"Load a snapshot (mmap by default) and optionally smoke-route it")
      Term.(const run $ copy_t $ no_verify_t $ messages_t $ jobs_t $ seed_t $ json_t $ path_t)
  in
  Cmd.group
    (Cmd.info "snapshot" ~doc:"Save, inspect and load mmap-able binary network snapshots")
    [ save_cmd; info_cmd; load_cmd ]

let () =
  Ftr_obs.Events.install_exit_flush ();
  let info =
    Cmd.info "p2psim" ~version:"1.0.0"
      ~doc:"Fault-tolerant routing in peer-to-peer systems (Aspnes-Diamadi-Shah, PODC 2002)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            route_cmd;
            explain_cmd;
            figure5_cmd;
            figure6_cmd;
            figure7_cmd;
            table1_cmd;
            adversary_cmd;
            byzantine_cmd;
            recovery_cmd;
            anatomy_cmd;
            dht_cmd;
            churn_cmd;
            report_cmd;
            check_cmd;
            sweep_cmd;
            serve_cmd;
            snapshot_cmd;
          ]))
